"""Buddy allocator over the cluster's GPU index space.

Classic binary buddy allocation: every block has a power-of-two size and is
aligned to its size, so a block of ``2^k`` GPUs is always an index-contiguous
subtree of the topology (maximally compact).  Free buddies coalesce on
release.  Allocation is best-fit by construction: a request is served by
splitting the *smallest* free block that fits, which is the paper's Best-Fit
heuristic specialised to power-of-two subtrees.

Hot-path data structures (the observable behavior is identical to the
original scan-based implementation; only the cost changed):

- ``_free`` maps size -> set of free offsets and remains the ground truth
  for membership tests.
- ``_heaps`` shadows each free set with a lazy-deletion min-heap so
  :meth:`allocate` pops the lowest offset in O(log n) instead of
  ``min(set)``.  Entries whose offset left the set are skipped on pop, and
  a heap is cleared wholesale whenever its set empties, which bounds the
  stale backlog by the number of frees since the last exhaustion.
- ``_mask`` is a bitmask whose set bits *are* the sizes with a non-empty
  free set (sizes are powers of two, so ``size`` doubles as the bit).
  ``can_allocate`` becomes one mask-and, :meth:`largest_free_block` one
  ``bit_length``, and allocate's smallest-fit size is the lowest set bit of
  ``mask & ~(size - 1)`` — exactly the ``sorted(...)[0]`` of the old scan.
- ``_free_total`` carries :attr:`free_gpus` incrementally.

:meth:`repack_plan` packs against an explicit sorted gap list (the
complement of the already-placed blocks) instead of re-walking the full
occupied list per block: placing a block splits one gap, and because
movable blocks are processed in descending size order, a gap that failed
for the current size can be skipped for the rest of that size class (the
left remainder of a split is always shorter than the size that split it).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from repro.errors import AllocationError, ConfigurationError
from repro.numeric import floor_power_of_two, is_power_of_two
from repro.perf import probe

__all__ = ["Block", "BuddyAllocator"]


@dataclass(frozen=True, order=True)
class Block:
    """A contiguous, size-aligned range of GPU indices."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size):
            raise ConfigurationError(f"block size must be a power of two: {self.size}")
        if self.offset < 0 or self.offset % self.size:
            raise ConfigurationError(
                f"block offset {self.offset} not aligned to size {self.size}"
            )

    @property
    def gpu_indices(self) -> range:
        """The block's GPU indices as a lazy ``range`` (no list per call)."""
        return range(self.offset, self.offset + self.size)

    @property
    def buddy_offset(self) -> int:
        return self.offset ^ self.size

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.offset}, {self.offset + self.size})"


class BuddyAllocator:
    """Binary buddy allocator over ``capacity`` GPU slots.

    Args:
        capacity: Total number of GPUs; must be a power of two.
    """

    def __init__(self, capacity: int) -> None:
        if not is_power_of_two(capacity):
            raise ConfigurationError(
                f"capacity must be a power of two, got {capacity}"
            )
        self.capacity = capacity
        self._free: dict[int, set[int]] = {}  # size -> set of free offsets
        self._heaps: dict[int, list[int]] = {}  # size -> lazy min-heap of offsets
        self._mask = 0  # OR of sizes with a non-empty free set
        self._free_total = 0
        self._allocated: set[Block] = set()
        self._free_add(capacity, 0)

    # ------------------------------------------------------ free-list helpers
    def _free_add(self, size: int, offset: int) -> None:
        """Insert ``offset`` into the size bucket (set + heap + summaries)."""
        bucket = self._free.get(size)
        if bucket is None:
            bucket = set()
            self._free[size] = bucket
            self._heaps[size] = []
        bucket.add(offset)
        heappush(self._heaps[size], offset)
        self._mask |= size
        self._free_total += size

    def _free_discard(self, size: int, offset: int) -> None:
        """Remove ``offset`` from the size bucket, leaving its heap entry
        stale (skipped lazily on pop; cleared when the bucket empties)."""
        bucket = self._free[size]
        bucket.remove(offset)
        self._free_total -= size
        if not bucket:
            self._mask &= ~size
            self._heaps[size].clear()

    def _free_pop_min(self, size: int) -> int:
        """Pop the lowest free offset of ``size`` (bucket must be non-empty)."""
        bucket = self._free[size]
        heap = self._heaps[size]
        while True:
            offset = heappop(heap)
            if offset in bucket:
                break
        bucket.remove(offset)
        self._free_total -= size
        if not bucket:
            self._mask &= ~size
            heap.clear()
        return offset

    # ----------------------------------------------------------- inspection
    @property
    def free_gpus(self) -> int:
        """Total number of unallocated GPUs."""
        return self._free_total

    @property
    def allocated_gpus(self) -> int:
        return self.capacity - self._free_total

    @property
    def allocated_blocks(self) -> list[Block]:
        return sorted(self._allocated)

    def largest_free_block(self) -> int:
        """Size of the biggest allocatable block (0 when full)."""
        if not self._mask:
            return 0
        return floor_power_of_two(self._mask)

    def can_allocate(self, size: int) -> bool:
        """Whether a block of ``size`` can be carved out *without* migration."""
        if not is_power_of_two(size):
            return False
        return bool(self._mask & ~(size - 1))

    # ------------------------------------------------------------- mutation
    def allocate(self, size: int) -> Block:
        """Carve out a block of exactly ``size`` GPUs (best-fit).

        Raises:
            AllocationError: When no free block is large enough (the caller
                may defragment via :meth:`repack_plan` and retry).
        """
        if not is_power_of_two(size):
            raise ConfigurationError(f"size must be a power of two, got {size}")
        if size > self.capacity:
            raise AllocationError(
                f"requested {size} GPUs from a {self.capacity}-GPU cluster"
            )
        fits = self._mask & ~(size - 1)
        if not fits:
            raise AllocationError(
                f"no free block of size {size} "
                f"(free={self.free_gpus}, largest={self.largest_free_block()})"
            )
        probe.bump("buddy_allocs")
        current = fits & -fits  # smallest free size that fits (best-fit)
        offset = self._free_pop_min(current)
        while current > size:
            current //= 2
            self._free_add(current, offset + current)
        block = Block(offset=offset, size=size)
        self._allocated.add(block)
        return block

    def free(self, block: Block) -> None:
        """Return a block and coalesce with its buddy chain.

        Raises:
            AllocationError: If the block is not currently allocated.
        """
        if block not in self._allocated:
            raise AllocationError(f"block {block} is not allocated")
        probe.bump("buddy_frees")
        self._allocated.remove(block)
        offset, size = block.offset, block.size
        while size < self.capacity:
            buddy = offset ^ size
            peers = self._free.get(size)
            if not peers or buddy not in peers:
                break
            self._free_discard(size, buddy)
            offset = min(offset, buddy)
            size *= 2
        self._free_add(size, offset)

    def reserve_exact(self, offset: int, size: int) -> Block:
        """Carve out one *specific* aligned block (e.g. a failed node).

        The target range must currently be free; callers evict overlapping
        allocations first.

        Raises:
            AllocationError: If any part of the range is allocated, or the
                target is not a valid aligned block.
        """
        target = Block(offset=offset, size=size)  # validates alignment
        for block in self._allocated:
            if block.offset < offset + size and offset < block.offset + block.size:
                raise AllocationError(
                    f"cannot reserve {target}: overlaps allocated {block}"
                )
        # Find the free block containing the range: free blocks are disjoint
        # and size-aligned, so for each candidate size the only possible
        # container starts at ``offset`` rounded down to that size — one
        # membership probe per set bit of the mask instead of a full scan.
        container: tuple[int, int] | None = None
        fits = self._mask & ~(size - 1)
        while fits:
            free_size = fits & -fits
            fits &= fits - 1
            candidate = offset - offset % free_size
            if candidate in self._free[free_size]:
                container = (candidate, free_size)
                break
        if container is None:  # pragma: no cover - guarded by overlap check
            raise AllocationError(f"no free block contains {target}")
        free_offset, free_size = container
        self._free_discard(free_size, free_offset)
        while free_size > size:
            free_size //= 2
            if offset < free_offset + free_size:
                # Target is in the left half; release the right half.
                self._free_add(free_size, free_offset + free_size)
            else:
                # Target is in the right half; release the left half.
                self._free_add(free_size, free_offset)
                free_offset += free_size
        self._allocated.add(target)
        return target

    def shrink(self, block: Block, new_size: int) -> Block:
        """Shrink an allocated block in place, keeping its aligned prefix.

        Used for elastic scale-down: the job keeps its first ``new_size``
        GPUs, so no data moves.  The freed suffix is returned to the free
        lists as the standard buddy decomposition.

        Raises:
            AllocationError: If the block is not allocated or ``new_size``
                is not a smaller power of two.
        """
        if block not in self._allocated:
            raise AllocationError(f"block {block} is not allocated")
        if not is_power_of_two(new_size) or new_size >= block.size:
            raise AllocationError(
                f"cannot shrink {block} to {new_size}: need a smaller power of two"
            )
        self._allocated.remove(block)
        kept = Block(offset=block.offset, size=new_size)
        self._allocated.add(kept)
        size = new_size
        while size < block.size:
            self._free_add(size, block.offset + size)
            size *= 2
        return kept

    # -------------------------------------------------------------- defrag
    def repack_plan(
        self, *, pinned: frozenset[Block] | None = None
    ) -> dict[Block, Block]:
        """Compute a fragmentation-free re-layout of all allocations.

        Movable blocks are packed first-fit in descending size order onto
        aligned addresses, skipping ``pinned`` blocks (failed nodes, which
        cannot move).  With no pins this degenerates to prefix packing, so
        all free space ends up in one aligned tail and any request within
        the free GPU count succeeds afterwards.  Returns a mapping
        ``old block -> new block`` with unmoved blocks omitted.

        Raises:
            AllocationError: If the movable blocks cannot be packed around
                the pinned ones (only possible when pins fragment the space).
        """
        pins = pinned or frozenset()
        plan: dict[Block, Block] = {}
        # Gap list: the complement of the pinned blocks, kept sorted.  The
        # lowest aligned address avoiding all placed blocks is the lowest
        # gap whose aligned start still fits — identical to probing every
        # aligned address against the occupied list, without the re-walk.
        gaps: list[tuple[int, int]] = []  # [start, end) intervals
        cursor = 0
        for pin in sorted(pins):
            if pin.offset > cursor:
                gaps.append((cursor, pin.offset))
            cursor = pin.offset + pin.size
        if cursor < self.capacity:
            gaps.append((cursor, self.capacity))
        movable = sorted(
            self._allocated - pins, key=lambda b: (-b.size, b.offset)
        )
        scan = 0  # first gap worth probing for the current size class
        last_size = 0
        for block in movable:
            size = block.size
            if size != last_size:
                # Smaller blocks may fit gaps the larger class skipped.
                scan = 0
                last_size = size
            address = None
            while scan < len(gaps):
                start, end = gaps[scan]
                aligned = -(-start // size) * size  # round up to alignment
                if aligned + size <= end:
                    address = aligned
                    break
                scan += 1  # too small for this size class — and every later
                # block of the class too, so never re-probed this pass
            if address is None:
                raise AllocationError(
                    f"cannot repack {block} around pinned blocks {sorted(pins)}"
                )
            start, end = gaps[scan]
            remainders = []
            if address > start:
                remainders.append((start, address))
            if address + size < end:
                remainders.append((address + size, end))
            gaps[scan : scan + 1] = remainders
            # A left remainder is shorter than ``size`` (aligned - start <
            # size), so the while loop above skips it and lands on the right
            # remainder for the next same-size block.
            target = Block(offset=address, size=size)
            if target != block:
                plan[block] = target
        return plan

    def apply_repack(self, plan: dict[Block, Block]) -> None:
        """Apply a plan produced by :meth:`repack_plan`."""
        for old, new in plan.items():
            if old not in self._allocated:
                raise AllocationError(f"stale repack plan: {old} not allocated")
            if old.size != new.size:
                raise AllocationError(f"repack cannot resize {old} -> {new}")
        survivors = self._allocated - set(plan)
        moved = set(plan.values())
        overlap_check = sorted(
            [(b.offset, b.size) for b in survivors | moved]
        )
        cursor = 0
        for offset, size in overlap_check:
            if offset < cursor:
                raise AllocationError("repack plan produces overlapping blocks")
            cursor = offset + size
        self._allocated = survivors | moved
        self._rebuild_free_lists()

    def _rebuild_free_lists(self) -> None:
        """Recompute free lists from the allocated set (after repack)."""
        self._free = {}
        self._heaps = {}
        self._mask = 0
        self._free_total = 0
        taken = sorted(self._allocated)
        cursor = 0
        gaps: list[tuple[int, int]] = []
        for block in taken:
            if block.offset > cursor:
                gaps.append((cursor, block.offset - cursor))
            cursor = block.offset + block.size
        if cursor < self.capacity:
            gaps.append((cursor, self.capacity - cursor))
        for start, length in gaps:
            self._add_gap(start, length)

    def _add_gap(self, start: int, length: int) -> None:
        """Split an arbitrary gap into maximal aligned power-of-two blocks."""
        while length > 0:
            size = start & -start if start else length
            if not size:
                size = length
            while size > length:
                size //= 2
            largest = floor_power_of_two(length)
            size = min(size, largest)
            self._free_add(size, start)
            start += size
            length -= size
