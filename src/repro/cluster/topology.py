"""Hierarchical GPU topology (paper Fig 5).

GPUs are the leaves of a multi-layer tree; each internal node represents a
shared interconnect (PCIe/NVLink group inside a server, the server itself,
the top-of-rack switch, the cluster spine).  GPU indices are assigned in
tree order, so an index-contiguous, size-aligned block of GPUs — exactly
what the buddy allocator hands out — is always a subtree, i.e. maximally
compact.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.numeric import is_power_of_two

__all__ = ["TopologyLevel", "ClusterSpec", "TopologyNode", "build_topology"]


class TopologyLevel(enum.IntEnum):
    """Layers of the hierarchy, ordered leaf to root."""

    GPU = 0
    PCIE_GROUP = 1
    NODE = 2
    RACK = 3
    CLUSTER = 4


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a GPU cluster.

    All group sizes must be powers of two so the buddy allocator's aligned
    blocks coincide with subtrees.

    Attributes:
        n_nodes: Number of servers.
        gpus_per_node: GPUs per server.
        gpus_per_pcie_group: GPUs sharing one intra-server switch complex.
            Defaults to ``gpus_per_node`` (NVLink-connected DGX-style nodes).
        nodes_per_rack: Servers under one top-of-rack switch.
    """

    n_nodes: int = 16
    gpus_per_node: int = 8
    gpus_per_pcie_group: int | None = None
    nodes_per_rack: int = 16

    def __post_init__(self) -> None:
        if self.gpus_per_pcie_group is None:
            object.__setattr__(self, "gpus_per_pcie_group", self.gpus_per_node)
        for label, value in (
            ("n_nodes", self.n_nodes),
            ("gpus_per_node", self.gpus_per_node),
            ("gpus_per_pcie_group", self.gpus_per_pcie_group),
            ("nodes_per_rack", self.nodes_per_rack),
        ):
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"{label} must be a positive power of two, got {value}"
                )
        if self.gpus_per_pcie_group > self.gpus_per_node:
            raise ConfigurationError(
                "gpus_per_pcie_group cannot exceed gpus_per_node"
            )

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def n_racks(self) -> int:
        return -(-self.n_nodes // self.nodes_per_rack)

    def node_of(self, gpu_index: int) -> int:
        """Server index hosting a GPU."""
        self._check_gpu(gpu_index)
        return gpu_index // self.gpus_per_node

    def nodes_spanned(self, gpu_indices: Sequence[int]) -> int:
        """How many distinct servers a GPU set touches."""
        if not gpu_indices:
            raise ConfigurationError("gpu_indices must not be empty")
        per_node = self.gpus_per_node
        nodes = {g // per_node for g in gpu_indices}
        if min(nodes) < 0 or max(nodes) >= self.n_nodes:
            for g in gpu_indices:  # re-walk for the precise error message
                self._check_gpu(g)
        return len(nodes)

    def _check_gpu(self, gpu_index: int) -> None:
        if not 0 <= gpu_index < self.total_gpus:
            raise ConfigurationError(
                f"gpu index {gpu_index} out of range [0, {self.total_gpus})"
            )


@dataclass
class TopologyNode:
    """One vertex of the topology tree.

    Attributes:
        level: Hierarchy layer of this vertex.
        first_gpu: Index of the leftmost GPU underneath.
        n_gpus: Number of GPUs underneath.
        children: Sub-vertices, in GPU-index order.
    """

    level: TopologyLevel
    first_gpu: int
    n_gpus: int
    children: list["TopologyNode"] = field(default_factory=list)

    @property
    def gpu_range(self) -> range:
        return range(self.first_gpu, self.first_gpu + self.n_gpus)

    def contains(self, gpu_index: int) -> bool:
        return gpu_index in self.gpu_range

    def iter_level(self, level: TopologyLevel) -> list["TopologyNode"]:
        """All descendants (or self) at a given layer, left to right."""
        if self.level == level:
            return [self]
        found: list[TopologyNode] = []
        for child in self.children:
            found.extend(child.iter_level(level))
        return found

    def smallest_subtree_containing(self, gpu_indices: list[int]) -> "TopologyNode":
        """Deepest vertex whose leaves cover every index in ``gpu_indices``."""
        if not gpu_indices:
            raise ConfigurationError("gpu_indices must not be empty")
        for gpu in gpu_indices:
            if not self.contains(gpu):
                raise ConfigurationError(
                    f"gpu {gpu} is outside subtree {self.gpu_range}"
                )
        for child in self.children:
            if all(child.contains(g) for g in gpu_indices):
                return child.smallest_subtree_containing(gpu_indices)
        return self


def build_topology(spec: ClusterSpec) -> TopologyNode:
    """Construct the full tree for a cluster specification."""
    nodes: list[TopologyNode] = []
    # A PCIe layer spanning the whole server is redundant (NVLink-connected
    # DGX-style nodes) and is elided from the tree.
    group_size = spec.gpus_per_pcie_group
    has_pcie_layer = group_size < spec.gpus_per_node
    for node_index in range(spec.n_nodes):
        base = node_index * spec.gpus_per_node
        children: list[TopologyNode] = []
        if has_pcie_layer:
            for group_start in range(base, base + spec.gpus_per_node, group_size):
                leaves = [
                    TopologyNode(TopologyLevel.GPU, first_gpu=g, n_gpus=1)
                    for g in range(group_start, group_start + group_size)
                ]
                children.append(
                    TopologyNode(
                        TopologyLevel.PCIE_GROUP,
                        first_gpu=group_start,
                        n_gpus=group_size,
                        children=leaves,
                    )
                )
        else:
            children = [
                TopologyNode(TopologyLevel.GPU, first_gpu=g, n_gpus=1)
                for g in range(base, base + spec.gpus_per_node)
            ]
        nodes.append(
            TopologyNode(
                TopologyLevel.NODE,
                first_gpu=base,
                n_gpus=spec.gpus_per_node,
                children=children,
            )
        )

    racks: list[TopologyNode] = []
    for rack_index in range(spec.n_racks):
        members = nodes[
            rack_index * spec.nodes_per_rack : (rack_index + 1) * spec.nodes_per_rack
        ]
        racks.append(
            TopologyNode(
                TopologyLevel.RACK,
                first_gpu=members[0].first_gpu,
                n_gpus=sum(m.n_gpus for m in members),
                children=members,
            )
        )

    return TopologyNode(
        TopologyLevel.CLUSTER,
        first_gpu=0,
        n_gpus=spec.total_gpus,
        children=racks,
    )
