"""Shared experiment machinery: workload construction and policy sweeps."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.registry import make_policy
from repro.cluster.topology import ClusterSpec
from repro.core.job import JobSpec
from repro.errors import ConfigurationError
from repro.profiles.throughput import ThroughputModel
from repro.sim.engine import Simulator
from repro.sim.executor import ElasticExecutor
from repro.sim.metrics import SimulationResult
from repro.traces.deadlines import DeadlineAssigner
from repro.traces.synthetic import ClusterTraceConfig, generate_trace
from repro.traces.workload import build_jobs

__all__ = ["ExperimentConfig", "testbed_workload", "run_policies"]


@dataclass
class ExperimentConfig:
    """Common knobs shared by the figure drivers.

    Attributes:
        seed: Master seed; trace generation and model assignment derive
            from it so every policy sees the identical workload.
        slot_seconds: Planning-slot width (the paper's average scheduling
            interval is ~23 minutes; 600 s keeps small runs responsive).
        overheads_enabled: Charge scaling/migration overheads.
        safety_margin: ElasticFlow work-inflation fraction protecting the
            guarantee against overheads.
        deadline_padding_s: ElasticFlow per-job planning-time allowance for
            checkpoint/restore stalls.
        stability_threshold: ElasticFlow rescale hysteresis (see
            :class:`~repro.core.scheduler.ElasticFlowPolicy`).
        throughput: Shared scaling-curve model.

    The three protection knobs default to the values that keep >99 % of
    admitted jobs on deadline under the calibrated overhead model; set all
    three to zero (and disable overheads) for the paper-exact algorithms.
    """

    seed: int = 0
    slot_seconds: float = 600.0
    overheads_enabled: bool = True
    safety_margin: float = 0.03
    deadline_padding_s: float = 60.0
    stability_threshold: float = 0.3
    throughput: ThroughputModel = field(default_factory=ThroughputModel)

    def executor(self) -> ElasticExecutor:
        if self.overheads_enabled:
            return ElasticExecutor()
        return ElasticExecutor.disabled()

    def policy(self, name: str):
        if name in ("elasticflow", "edf+es"):
            return make_policy(
                name,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
                stability_threshold=self.stability_threshold,
            )
        return make_policy(name)


def testbed_workload(
    config: ExperimentConfig,
    *,
    cluster_gpus: int,
    n_jobs: int,
    target_load: float = 1.2,
    duration_median_s: float = 3600.0,
    deadlines: DeadlineAssigner | None = None,
    best_effort_fraction: float = 0.0,
) -> tuple[ClusterSpec, list[JobSpec]]:
    """Build the Section 6.2 testbed-style workload.

    The paper's testbed runs replay a slice of one production trace on 32 or
    128 GPUs; this generates the equivalent synthetic slice.
    """
    if cluster_gpus % 8:
        raise ConfigurationError(
            f"cluster_gpus must be a multiple of 8 (DGX nodes), got {cluster_gpus}"
        )
    trace_config = ClusterTraceConfig(
        name=f"testbed-{cluster_gpus}g-{n_jobs}j",
        cluster_gpus=cluster_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
        duration_median_s=duration_median_s,
        duration_sigma=1.2,
    )
    trace = generate_trace(trace_config, seed=config.seed)
    specs = build_jobs(
        trace,
        config.throughput,
        seed=config.seed + 1,
        deadlines=deadlines,
        best_effort_fraction=best_effort_fraction,
    )
    cluster = ClusterSpec(n_nodes=cluster_gpus // 8, gpus_per_node=8)
    return cluster, specs


def run_policies(
    policy_names: list[str],
    cluster: ClusterSpec,
    specs: list[JobSpec],
    config: ExperimentConfig,
    *,
    record_timeline: bool = False,
) -> dict[str, SimulationResult]:
    """Replay the identical workload under every named policy."""
    if not policy_names:
        raise ConfigurationError("policy_names must not be empty")
    results: dict[str, SimulationResult] = {}
    for name in policy_names:
        simulator = Simulator(
            cluster,
            config.policy(name),
            specs,
            throughput=config.throughput,
            slot_seconds=config.slot_seconds,
            executor=config.executor(),
            record_timeline=record_timeline,
        )
        results[name] = simulator.run()
    return results


def improvement_factors(
    results: dict[str, SimulationResult], reference: str = "elasticflow"
) -> dict[str, float]:
    """How many times more deadlines the reference meets than each baseline."""
    if reference not in results:
        raise ConfigurationError(f"no result for reference policy {reference!r}")
    reference_met = results[reference].deadlines_met
    factors = {}
    for name, result in results.items():
        if name == reference:
            continue
        met = result.deadlines_met
        factors[name] = reference_met / met if met else math.inf
    return factors
