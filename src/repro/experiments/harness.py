"""Shared experiment machinery: workload construction and policy sweeps.

``run_policies`` is the single chokepoint every figure driver goes
through; since PR 4 it routes the (policy x workload) grid through the
:mod:`repro.parallel` fan-out engine, so every driver inherits the
``workers=`` knob and the content-addressed run cache without further
plumbing.  Child seeds derive from the master seed via the documented
seed-spawn scheme (:func:`repro.parallel.seeds.spawn_seed`); the old
``seed + 1`` arithmetic collided across adjacent sweep points.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from repro.baselines.registry import make_policy
from repro.cluster.topology import ClusterSpec
from repro.core.job import JobSpec
from repro.errors import ConfigurationError
from repro.parallel.cache import RunCache
from repro.parallel.engine import run_specs
from repro.parallel.seeds import spawn_seed
from repro.parallel.spec import PolicySpec, RunSpec, WorkloadSpec
from repro.profiles.throughput import ThroughputModel
from repro.sim.engine import Simulator
from repro.sim.executor import ElasticExecutor
from repro.sim.metrics import SimulationResult
from repro.traces.deadlines import DeadlineAssigner
from repro.traces.synthetic import ClusterTraceConfig

__all__ = [
    "ExperimentConfig",
    "testbed_workload",
    "testbed_workload_spec",
    "policy_run_specs",
    "run_policies",
    "improvement_factors",
]


@dataclass
class ExperimentConfig:
    """Common knobs shared by the figure drivers.

    Attributes:
        seed: Master seed; trace generation and model assignment derive
            from it so every policy sees the identical workload.
        slot_seconds: Planning-slot width (the paper's average scheduling
            interval is ~23 minutes; 600 s keeps small runs responsive).
        overheads_enabled: Charge scaling/migration overheads.
        safety_margin: ElasticFlow work-inflation fraction protecting the
            guarantee against overheads.
        deadline_padding_s: ElasticFlow per-job planning-time allowance for
            checkpoint/restore stalls.
        stability_threshold: ElasticFlow rescale hysteresis (see
            :class:`~repro.core.scheduler.ElasticFlowPolicy`).
        throughput: Shared scaling-curve model.

    The three protection knobs default to the values that keep >99 % of
    admitted jobs on deadline under the calibrated overhead model; set all
    three to zero (and disable overheads) for the paper-exact algorithms.
    """

    seed: int = 0
    slot_seconds: float = 600.0
    overheads_enabled: bool = True
    safety_margin: float = 0.03
    deadline_padding_s: float = 60.0
    stability_threshold: float = 0.3
    throughput: ThroughputModel = field(default_factory=ThroughputModel)

    def executor(self) -> ElasticExecutor:
        if self.overheads_enabled:
            return ElasticExecutor()
        return ElasticExecutor.disabled()

    def policy_spec(self, name: str) -> PolicySpec:
        """The picklable policy description the fan-out engine ships."""
        if name in ("elasticflow", "edf+es"):
            return PolicySpec.of(
                name,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
                stability_threshold=self.stability_threshold,
            )
        return PolicySpec.of(name)

    def policy(self, name: str):
        spec = self.policy_spec(name)
        return make_policy(spec.name, **dict(spec.knobs))


def _testbed_trace_config(
    *,
    cluster_gpus: int,
    n_jobs: int,
    target_load: float,
    duration_median_s: float,
) -> ClusterTraceConfig:
    if cluster_gpus % 8:
        raise ConfigurationError(
            f"cluster_gpus must be a multiple of 8 (DGX nodes), got {cluster_gpus}"
        )
    return ClusterTraceConfig(
        name=f"testbed-{cluster_gpus}g-{n_jobs}j",
        cluster_gpus=cluster_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
        duration_median_s=duration_median_s,
        duration_sigma=1.2,
    )


def testbed_workload_spec(
    config: ExperimentConfig,
    *,
    cluster_gpus: int,
    n_jobs: int,
    target_load: float = 1.2,
    duration_median_s: float = 3600.0,
    deadlines: DeadlineAssigner | None = None,
    best_effort_fraction: float = 0.0,
) -> tuple[ClusterSpec, WorkloadSpec]:
    """The Section 6.2 testbed workload as a fingerprintable description.

    Child seeds are spawned from the master seed with the labelled streams
    ``("testbed", "trace")`` and ``("testbed", "jobs")`` — never by seed
    arithmetic, which aliased streams across adjacent sweep points (the
    jobs stream of ``seed`` equalled the trace stream of ``seed - 1`` under
    the old ``seed + 1`` scheme).
    """
    trace_config = _testbed_trace_config(
        cluster_gpus=cluster_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
        duration_median_s=duration_median_s,
    )
    workload = WorkloadSpec.generative(
        trace_config,
        trace_seed=spawn_seed(config.seed, "testbed", "trace"),
        jobs_seed=spawn_seed(config.seed, "testbed", "jobs"),
        deadlines=deadlines,
        best_effort_fraction=best_effort_fraction,
    )
    cluster = ClusterSpec(n_nodes=cluster_gpus // 8, gpus_per_node=8)
    return cluster, workload


def testbed_workload(
    config: ExperimentConfig,
    *,
    cluster_gpus: int,
    n_jobs: int,
    target_load: float = 1.2,
    duration_median_s: float = 3600.0,
    deadlines: DeadlineAssigner | None = None,
    best_effort_fraction: float = 0.0,
) -> tuple[ClusterSpec, list[JobSpec]]:
    """Build the Section 6.2 testbed-style workload.

    The paper's testbed runs replay a slice of one production trace on 32 or
    128 GPUs; this generates the equivalent synthetic slice (materialised
    from :func:`testbed_workload_spec`).
    """
    cluster, workload = testbed_workload_spec(
        config,
        cluster_gpus=cluster_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
        duration_median_s=duration_median_s,
        deadlines=deadlines,
        best_effort_fraction=best_effort_fraction,
    )
    return cluster, workload.materialize(config.throughput)


def policy_run_specs(
    policy_names: list[str],
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    config: ExperimentConfig,
    *,
    record_timeline: bool = False,
) -> list[RunSpec]:
    """One engine cell per policy over a shared workload description."""
    throughput = config.throughput
    return [
        RunSpec(
            workload=workload,
            policy=config.policy_spec(name),
            cluster=cluster,
            slot_seconds=config.slot_seconds,
            overheads_enabled=config.overheads_enabled,
            record_timeline=record_timeline,
            interconnect=throughput.interconnect,
            power_of_two=throughput.power_of_two,
        )
        for name in policy_names
    ]


def _reconstructible(config: ExperimentConfig) -> bool:
    """Whether the shared model can be rebuilt from plain data in a worker.

    A stateful planning model (e.g. ``OnlineThroughputModel``) carries
    runtime corrections no :class:`RunSpec` can describe, so those runs
    stay on the in-process path.
    """
    return type(config.throughput) is ThroughputModel


def run_policies(
    policy_names: list[str],
    cluster: ClusterSpec,
    specs: list[JobSpec] | None,
    config: ExperimentConfig,
    *,
    record_timeline: bool = False,
    workers: int | str = 1,
    cache: RunCache | None = None,
    workload: WorkloadSpec | None = None,
) -> dict[str, SimulationResult]:
    """Replay the identical workload under every named policy.

    Args:
        policy_names: Schedulers to run, one engine cell each.
        cluster: Cluster shape shared by all cells.
        specs: The materialised workload; may be ``None`` when a generative
            ``workload`` description is supplied instead.
        config: Shared experiment knobs.
        record_timeline: Keep per-event cluster samples.
        workers: Fan-out width — a positive int or ``"auto"`` (one worker
            per core).  ``1`` is the bit-identical serial fallback.
        cache: Optional content-addressed run cache; hits skip simulation.
        workload: Generative workload description matching ``specs``;
            preferred for fingerprinting (compact keys) when available.
    """
    if not policy_names:
        raise ConfigurationError("policy_names must not be empty")
    if specs is None and workload is None:
        raise ConfigurationError("run_policies needs specs or a workload")
    if not _reconstructible(config):
        # Live-model fallback: run in this process against the shared
        # stateful model; no fingerprint can describe it, so no cache.
        if specs is None:
            specs = workload.materialize(config.throughput)
        results: dict[str, SimulationResult] = {}
        for name in policy_names:
            simulator = Simulator(
                cluster,
                config.policy(name),
                specs,
                throughput=config.throughput,
                slot_seconds=config.slot_seconds,
                executor=config.executor(),
                record_timeline=record_timeline,
            )
            results[name] = simulator.run()
        return results
    description = workload if workload is not None else WorkloadSpec.inline(specs)
    cells = policy_run_specs(
        policy_names, cluster, description, config, record_timeline=record_timeline
    )
    outcomes = run_specs(cells, workers=workers, cache=cache)
    return dict(zip(policy_names, outcomes))


def improvement_factors(
    results: dict[str, SimulationResult], reference: str = "elasticflow"
) -> dict[str, float]:
    """How many times more deadlines the reference meets than each baseline.

    A baseline that meets zero deadlines yields ``math.inf`` (the reference
    is infinitely better); serialise these dictionaries with
    :func:`repro.sim.serialize.sanitize_for_json`, which encodes ``inf`` as
    the string ``"inf"`` so the output stays strict JSON.
    """
    if reference not in results:
        raise ConfigurationError(f"no result for reference policy {reference!r}")
    reference_met = results[reference].deadlines_met
    factors = {}
    for name, result in results.items():
        if name == reference:
            continue
        met = result.deadlines_met
        factors[name] = reference_met / met if met else math.inf
    return factors
