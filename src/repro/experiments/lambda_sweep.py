"""Deadline-tightness sensitivity (an extension beyond the paper's figures).

The paper fixes deadline tightness at lambda ~ U[0.5, 1.5] and never asks
how the schedulers behave as deadlines tighten or relax uniformly.  This
sweep pins lambda per run and reports the deadline satisfactory ratio, which
locates two structural crossovers:

- at lambda < 1 every non-elastic scheduler is capped by construction (a
  fixed-size job cannot beat its own runtime), while elastic schedulers can
  still win by scaling out;
- as lambda grows past the contention point, EDF catches up with
  ElasticFlow (with slack to spare, ordering hardly matters), which is the
  same effect Fig 8b shows across lightly loaded traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.parallel.engine import run_specs
from repro.traces.deadlines import DeadlineAssigner

__all__ = ["LambdaSweepRow", "lambda_tightness_sweep"]

SWEEP_POLICIES = ("elasticflow", "edf", "gandiva", "chronus")


@dataclass
class LambdaSweepRow:
    """Deadline satisfactory ratios at one fixed tightness."""

    tightness: float
    ratios: dict[str, float]


def lambda_tightness_sweep(
    *,
    config: ExperimentConfig | None = None,
    tightness_values: tuple[float, ...] = (0.6, 0.8, 1.0, 1.5, 2.5),
    cluster_gpus: int = 64,
    n_jobs: int = 80,
    target_load: float = 1.3,
    policies: tuple[str, ...] = SWEEP_POLICIES,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> list[LambdaSweepRow]:
    """Replay the same trace with every deadline at ``lambda x duration``.

    The full (tightness x policy) grid runs as one batch through the
    parallel engine.
    """
    config = config or ExperimentConfig()
    names = list(policies)
    cells = []
    for tightness in tightness_values:
        cluster, workload = testbed_workload_spec(
            config,
            cluster_gpus=cluster_gpus,
            n_jobs=n_jobs,
            target_load=target_load,
            deadlines=DeadlineAssigner(tightness, tightness),
        )
        cells.extend(policy_run_specs(names, cluster, workload, config))
    outcomes = run_specs(cells, workers=workers, cache=cache)
    rows: list[LambdaSweepRow] = []
    for position, tightness in enumerate(tightness_values):
        chunk = outcomes[position * len(names) : (position + 1) * len(names)]
        rows.append(
            LambdaSweepRow(
                tightness=tightness,
                ratios={
                    name: result.deadline_satisfactory_ratio
                    for name, result in zip(names, chunk)
                },
            )
        )
    return rows
