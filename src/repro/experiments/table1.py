"""Table 1 — the DNN model pool used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiles.modelzoo import MODEL_ZOO, TABLE1_SETTINGS

__all__ = ["Table1Row", "table1_models"]


@dataclass(frozen=True)
class Table1Row:
    """One line of the paper's Table 1."""

    task: str
    dataset: str
    model: str
    batch_sizes: tuple[int, ...]


def table1_models() -> list[Table1Row]:
    """The model pool, grouped exactly like the paper's Table 1."""
    batches: dict[str, list[int]] = {}
    for name, batch in TABLE1_SETTINGS:
        batches.setdefault(name, []).append(batch)
    rows = []
    for name, profile in MODEL_ZOO.items():
        rows.append(
            Table1Row(
                task=profile.task,
                dataset=profile.dataset,
                model=name,
                batch_sizes=tuple(sorted(batches[name])),
            )
        )
    order = {"cv": 0, "nlp": 1, "speech": 2}
    rows.sort(key=lambda r: (order.get(r.task, 9), r.model))
    return rows
