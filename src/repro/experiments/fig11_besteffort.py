"""Fig 11 — handling a mix of SLO and best-effort jobs.

The best-effort fraction sweeps from 0 % to 50 %.  Reported per point:
(a) the deadline satisfactory ratio of the SLO jobs, and (b) the average
JCT of the best-effort jobs normalised to Gandiva's (the paper's
presentation, because EDF's absolute JCT is off the chart).

Shape targets: ElasticFlow's SLO ratio stays the highest and roughly flat
across the sweep; at low best-effort shares its best-effort JCT is
competitive, and at higher shares it deliberately sacrifices best-effort
JCT to protect SLO deadlines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.parallel.engine import run_specs

__all__ = ["Fig11Row", "fig11_best_effort_mix"]

FIG11_POLICIES = ("elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus")


@dataclass
class Fig11Row:
    """Results at one best-effort percentage."""

    best_effort_fraction: float
    slo_satisfactory_ratio: dict[str, float]
    best_effort_jct_normalized: dict[str, float]


def fig11_best_effort_mix(
    *,
    config: ExperimentConfig | None = None,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5),
    cluster_gpus: int = 64,
    n_jobs: int = 80,
    policies: tuple[str, ...] = FIG11_POLICIES,
    normalize_to: str = "gandiva",
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> list[Fig11Row]:
    """Sweep the best-effort share of the workload (Fig 11).

    The full (fraction x policy) grid runs as one batch through the
    parallel engine.
    """
    config = config or ExperimentConfig()
    names = list(policies)
    cells = []
    for fraction in fractions:
        cluster, workload = testbed_workload_spec(
            config,
            cluster_gpus=cluster_gpus,
            n_jobs=n_jobs,
            target_load=1.5,
            best_effort_fraction=fraction,
        )
        cells.extend(policy_run_specs(names, cluster, workload, config))
    outcomes = run_specs(cells, workers=workers, cache=cache)
    rows: list[Fig11Row] = []
    for position, fraction in enumerate(fractions):
        chunk = outcomes[position * len(names) : (position + 1) * len(names)]
        results = dict(zip(names, chunk))
        slo = {
            name: result.deadline_satisfactory_ratio
            for name, result in results.items()
        }
        reference = results[normalize_to].average_jct(best_effort_only=True)
        jct: dict[str, float] = {}
        for name, result in results.items():
            value = result.average_jct(best_effort_only=True)
            if math.isnan(value) or math.isnan(reference) or reference == 0:
                jct[name] = math.nan
            else:
                jct[name] = value / reference
        rows.append(
            Fig11Row(
                best_effort_fraction=fraction,
                slo_satisfactory_ratio=slo,
                best_effort_jct_normalized=jct,
            )
        )
    return rows
