"""Fig 3 — the motivating example showing EDF mishandles non-linear scaling.

Two jobs share the toy scaling curve (1 unit of throughput on 1 worker,
1.5 units on 2 workers) and each needs 3 units of iterations.  Deadlines
are at times 3 and 3.5.  EDF runs A on both workers, then B on both
workers: A finishes at 2.0 but B finishes at 4.0 > 3.5.  Giving each job
one worker finishes both exactly at 3.0.  ElasticFlow's admission control
finds the one-worker-each schedule.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from types import MappingProxyType

import numpy as np

from repro.core.admission import AdmissionController, PlanningJob
from repro.core.slots import SlotGrid

__all__ = ["Fig3Outcome", "fig3_edf_example"]

#: The toy curve of Fig 3(a).
TOY_CURVE: Mapping[int, float] = MappingProxyType({1: 1.0, 2: 1.5})
JOB_ITERATIONS = 3.0
DEADLINE_A = 3.0
DEADLINE_B = 3.5


@dataclass(frozen=True)
class Fig3Outcome:
    """Completion times and deadline verdicts under one schedule."""

    schedule: str
    finish_a: float
    finish_b: float

    @property
    def a_met(self) -> bool:
        return self.finish_a <= DEADLINE_A + 1e-9

    @property
    def b_met(self) -> bool:
        return self.finish_b <= DEADLINE_B + 1e-9

    @property
    def deadlines_met(self) -> int:
        return int(self.a_met) + int(self.b_met)


def _toy_info(job_id: str, deadline: float, grid: SlotGrid) -> PlanningJob:
    capacity = 2
    throughput_table = np.zeros(capacity + 1)
    size_table = np.zeros(capacity + 1, dtype=np.int64)
    best, best_thr = 0, 0.0
    for x in range(1, capacity + 1):
        if x in TOY_CURVE and TOY_CURVE[x] > best_thr:
            best, best_thr = x, TOY_CURVE[x]
        throughput_table[x] = best_thr
        size_table[x] = best
    return PlanningJob(
        job_id=job_id,
        remaining_iterations=JOB_ITERATIONS,
        deadline=deadline,
        weights=grid.weights_until(deadline),
        throughput_table=throughput_table,
        size_table=size_table,
        sizes=[1, 2],
    )


def fig3_edf_example() -> dict[str, Fig3Outcome | bool]:
    """Reproduce Fig 3(b), Fig 3(c), and ElasticFlow's verdict.

    Returns a dictionary with the EDF outcome, the one-worker-each outcome,
    and whether ElasticFlow's admission control admits both jobs (it must).
    """
    # Fig 3(b): EDF gives both workers to A, then both to B.
    finish_a_edf = JOB_ITERATIONS / TOY_CURVE[2]
    finish_b_edf = finish_a_edf + JOB_ITERATIONS / TOY_CURVE[2]
    edf = Fig3Outcome("edf", finish_a_edf, finish_b_edf)

    # Fig 3(c): one worker each.
    one_each = Fig3Outcome(
        "one-worker-each",
        JOB_ITERATIONS / TOY_CURVE[1],
        JOB_ITERATIONS / TOY_CURVE[1],
    )

    grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=4)
    controller = AdmissionController(capacity=2)
    job_a = _toy_info("a", DEADLINE_A, grid)
    job_b = _toy_info("b", DEADLINE_B, grid)
    result = controller.try_admit(job_b, [job_a], grid)

    return {
        "edf": edf,
        "one_worker_each": one_each,
        "elasticflow_admits_both": result.admitted,
    }
