"""A clairvoyant admission oracle for small instances.

How good is ElasticFlow's *online* admission control?  The paper never
quantifies the gap to an offline optimum; on small instances we can.  The
oracle sees the whole batch of jobs up front and picks the largest subset
whose minimum satisfactory shares co-exist (Algorithm 1 feasibility over
the subset) — an upper bound on how many deadlines any admission policy
built on the same planner could promise.  Comparing ElasticFlow's greedy
arrival-order decisions against it measures the price of not knowing the
future.

Exponential in the job count; intended for n <= 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.admission import AdmissionController, planning_job
from repro.core.job import Job, JobSpec
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.profiles.throughput import ThroughputModel

__all__ = ["OracleResult", "clairvoyant_max_admissions"]

_MAX_JOBS = 14


@dataclass(frozen=True)
class OracleResult:
    """The offline optimum for one instance.

    Attributes:
        max_admissions: Size of the largest feasible subset.
        best_subset: One witness subset (job ids, sorted).
        subsets_checked: Search effort.
    """

    max_admissions: int
    best_subset: tuple[str, ...]
    subsets_checked: int


def clairvoyant_max_admissions(
    specs: list[JobSpec],
    cluster_gpus: int,
    throughput: ThroughputModel,
    *,
    slot_seconds: float = 600.0,
    now: float = 0.0,
) -> OracleResult:
    """Largest subset of jobs whose deadlines are jointly guaranteeable.

    All jobs are considered available from ``now`` (the clairvoyant setting
    collapses arrival times: the oracle may pre-reserve for late arrivals).

    Raises:
        ConfigurationError: For empty input or more than 14 jobs (the
            search is exponential).
    """
    if not specs:
        raise ConfigurationError("specs must not be empty")
    if len(specs) > _MAX_JOBS:
        raise ConfigurationError(
            f"oracle search is exponential; got {len(specs)} jobs (max {_MAX_JOBS})"
        )
    slo = [spec for spec in specs if not spec.best_effort]
    controller = AdmissionController(cluster_gpus)
    checked = 0

    def feasible(subset: tuple[JobSpec, ...]) -> bool:
        nonlocal checked
        checked += 1
        deadlines = [spec.effective_deadline for spec in subset]
        grid = SlotGrid.for_jobs(now, deadlines, slot_seconds)
        infos = []
        for spec in subset:
            job = Job(spec=spec)
            curve = throughput.curve(spec.model_name, spec.global_batch_size)
            infos.append(planning_job(job, curve, grid, cluster_gpus))
        return controller.plan_shares(infos, grid).admitted

    # Feasibility is downward-closed (removing a job never hurts), so scan
    # subset sizes from largest to smallest and stop at the first success.
    for size in range(len(slo), 0, -1):
        for subset in combinations(slo, size):
            if feasible(subset):
                return OracleResult(
                    max_admissions=size,
                    best_subset=tuple(sorted(spec.job_id for spec in subset)),
                    subsets_checked=checked,
                )
    return OracleResult(max_admissions=0, best_subset=(), subsets_checked=checked)
