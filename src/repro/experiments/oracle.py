"""A clairvoyant admission oracle for small instances.

How good is ElasticFlow's *online* admission control?  The paper never
quantifies the gap to an offline optimum; on small instances we can.  The
oracle sees the whole batch of jobs up front and picks the largest subset
whose minimum satisfactory shares co-exist (Algorithm 1 feasibility over
the subset) — an upper bound on how many deadlines any admission policy
built on the same planner could promise.  Comparing ElasticFlow's greedy
arrival-order decisions against it measures the price of not knowing the
future.

Exponential in the job count; intended for n <= 14.  ``workers > 1``
shards each subset size's combinations across a spawn pool; the reported
witness is always the *lowest-index* feasible combination in enumeration
order and ``subsets_checked`` is the serial-equivalent effort, so serial
and parallel scans return identical results.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import combinations, islice
from multiprocessing import get_context

from repro.core.admission import AdmissionController, planning_job
from repro.core.job import Job, JobSpec
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.parallel.engine import resolve_workers
from repro.profiles.throughput import ThroughputModel

__all__ = ["OracleResult", "clairvoyant_max_admissions"]

_MAX_JOBS = 14
#: Below this many combinations at a size, pool startup costs more than the
#: scan itself; stay serial.
_MIN_PARALLEL_COMBOS = 64


@dataclass(frozen=True)
class OracleResult:
    """The offline optimum for one instance.

    Attributes:
        max_admissions: Size of the largest feasible subset.
        best_subset: One witness subset (job ids, sorted).
        subsets_checked: Search effort (serial-equivalent count).
    """

    max_admissions: int
    best_subset: tuple[str, ...]
    subsets_checked: int


def _subset_feasible(
    subset: tuple[JobSpec, ...],
    cluster_gpus: int,
    throughput: ThroughputModel,
    slot_seconds: float,
    now: float,
) -> bool:
    controller = AdmissionController(cluster_gpus)
    deadlines = [spec.effective_deadline for spec in subset]
    grid = SlotGrid.for_jobs(now, deadlines, slot_seconds)
    infos = []
    for spec in subset:
        job = Job(spec=spec)
        curve = throughput.curve(spec.model_name, spec.global_batch_size)
        infos.append(planning_job(job, curve, grid, cluster_gpus))
    return controller.plan_shares(infos, grid).admitted


def _scan_chunk(
    args: tuple,
) -> int | None:
    """Worker entrypoint: lowest feasible combination index in [start, stop).

    Rebuilds the throughput model from its picklable description; the
    combination stream is re-derived in the worker (enumeration order is
    fixed by :func:`itertools.combinations`), so only plain data crosses
    the process boundary.
    """
    (
        slo,
        size,
        start,
        stop,
        cluster_gpus,
        slot_seconds,
        now,
        interconnect,
        power_of_two,
    ) = args
    throughput = ThroughputModel(interconnect, power_of_two=power_of_two)
    stream = islice(combinations(slo, size), start, stop)
    for offset, subset in enumerate(stream):
        if _subset_feasible(subset, cluster_gpus, throughput, slot_seconds, now):
            return start + offset
    return None


def _first_feasible_parallel(
    slo: list[JobSpec],
    size: int,
    total: int,
    workers: int,
    cluster_gpus: int,
    throughput: ThroughputModel,
    slot_seconds: float,
    now: float,
) -> int | None:
    """Lowest feasible combination index at one size, sharded over a pool."""
    n_chunks = min(workers, total)
    bounds = [round(i * total / n_chunks) for i in range(n_chunks + 1)]
    tasks = [
        (
            tuple(slo),
            size,
            bounds[i],
            bounds[i + 1],
            cluster_gpus,
            slot_seconds,
            now,
            throughput.interconnect,
            throughput.power_of_two,
        )
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]
    with ProcessPoolExecutor(
        max_workers=len(tasks), mp_context=get_context("spawn")
    ) as pool:
        witnesses = [w for w in pool.map(_scan_chunk, tasks) if w is not None]
    return min(witnesses) if witnesses else None


def clairvoyant_max_admissions(
    specs: list[JobSpec],
    cluster_gpus: int,
    throughput: ThroughputModel,
    *,
    slot_seconds: float = 600.0,
    now: float = 0.0,
    workers: int | str = 1,
) -> OracleResult:
    """Largest subset of jobs whose deadlines are jointly guaranteeable.

    All jobs are considered available from ``now`` (the clairvoyant setting
    collapses arrival times: the oracle may pre-reserve for late arrivals).

    Raises:
        ConfigurationError: For empty input or more than 14 jobs (the
            search is exponential).
    """
    if not specs:
        raise ConfigurationError("specs must not be empty")
    if len(specs) > _MAX_JOBS:
        raise ConfigurationError(
            f"oracle search is exponential; got {len(specs)} jobs (max {_MAX_JOBS})"
        )
    worker_count = resolve_workers(workers)
    # A stateful model cannot be rebuilt in a worker from plain data.
    if type(throughput) is not ThroughputModel:
        worker_count = 1
    slo = [spec for spec in specs if not spec.best_effort]
    checked = 0

    # Feasibility is downward-closed (removing a job never hurts), so scan
    # subset sizes from largest to smallest and stop at the first success.
    for size in range(len(slo), 0, -1):
        total = math.comb(len(slo), size)
        witness: int | None = None
        if worker_count > 1 and total >= _MIN_PARALLEL_COMBOS:
            witness = _first_feasible_parallel(
                slo,
                size,
                total,
                worker_count,
                cluster_gpus,
                throughput,
                slot_seconds,
                now,
            )
        else:
            for index, subset in enumerate(combinations(slo, size)):
                if _subset_feasible(
                    subset, cluster_gpus, throughput, slot_seconds, now
                ):
                    witness = index
                    break
        if witness is not None:
            checked += witness + 1
            chosen = next(islice(combinations(slo, size), witness, witness + 1))
            return OracleResult(
                max_admissions=size,
                best_subset=tuple(sorted(spec.job_id for spec in chosen)),
                subsets_checked=checked,
            )
        checked += total
    return OracleResult(max_admissions=0, best_subset=(), subsets_checked=checked)
