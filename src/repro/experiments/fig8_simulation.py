"""Fig 8 — end-to-end results in simulation.

(a) The 195-job workload including Pollux (the paper could not afford to
    run Pollux on the testbed and falls back to simulation; for us both are
    simulations, so this is the Fig 6(b) configuration plus Pollux).
(b) The ten production-like traces plus the Philly-like trace, compared
    across six schedulers.  Shape targets: ElasticFlow wins everywhere; the
    deadline-unaware baselines barely move across traces; EDF beats them on
    the lightly loaded traces (#9, #10) and collapses on the loaded ones.

The trace sweep fans out as one flat (trace x policy) grid through the
parallel engine, so ``workers > 1`` overlaps whole traces, not just the
policies within one.  Note Fig 8(a) shares its workload description with
Fig 6(b): when both run against the same cache the six non-Pollux cells
are hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigurationError
from repro.experiments.fig6_endtoend import LARGE_POLICIES, Fig6Result
from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
    run_policies,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.parallel.engine import run_specs
from repro.parallel.seeds import spawn_seed
from repro.parallel.spec import WorkloadSpec
from repro.traces.philly import philly_config
from repro.traces.synthetic import PRODUCTION_CLUSTERS

__all__ = ["Fig8bRow", "fig8a_with_pollux", "fig8b_trace_sweep"]


def fig8a_with_pollux(
    *,
    config: ExperimentConfig | None = None,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> Fig6Result:
    """Fig 8(a): the large testbed workload with Pollux included."""
    config = config or ExperimentConfig()
    # Fig 8a replays the 195-job Fig 6(b) workload with Pollux included.
    cluster, workload = testbed_workload_spec(
        config, cluster_gpus=128, n_jobs=195, target_load=2.0
    )
    policies = list(LARGE_POLICIES) + ["pollux"]
    results = run_policies(
        policies, cluster, None, config, workers=workers, cache=cache, workload=workload
    )
    return Fig6Result(label="fig8a", results=results)


@dataclass
class Fig8bRow:
    """Per-trace deadline satisfactory ratios."""

    trace: str
    cluster_gpus: int
    n_jobs: int
    ratios: dict[str, float]


def fig8b_trace_sweep(
    *,
    config: ExperimentConfig | None = None,
    scale: float = 0.125,
    policies: tuple[str, ...] = tuple(LARGE_POLICIES),
    include_philly: bool = True,
    trace_indices: tuple[int, ...] | None = None,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> list[Fig8bRow]:
    """Fig 8(b): sweep the ten production traces (optionally scaled down).

    Args:
        config: Shared experiment knobs.
        scale: Proportional shrink factor applied to every trace (1.0 runs
            the full paper-scale traces — hours of CPU; the default keeps
            the sweep minutes-scale while preserving each trace's load).
        policies: Schedulers to compare.
        include_philly: Append the Philly-like public trace.
        trace_indices: Subset of the ten traces to run (default: all).
        workers: Fan-out width over the full (trace x policy) grid.
        cache: Optional content-addressed run cache.

    Per-trace seeds are spawned from the master seed keyed by the *trace
    name* (stable under subsetting and ordering; the old ``seed + index``
    arithmetic collided across adjacent traces).
    """
    config = config or ExperimentConfig()
    if not 0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    configs = list(PRODUCTION_CLUSTERS)
    if trace_indices is not None:
        configs = [configs[i] for i in trace_indices]
    if include_philly:
        configs.append(philly_config())

    points: list[tuple[str, ClusterSpec, WorkloadSpec]] = []
    for trace_config in configs:
        scaled = trace_config.scaled(scale) if scale < 1.0 else trace_config
        workload = WorkloadSpec.generative(
            scaled,
            trace_seed=spawn_seed(config.seed, "fig8b", trace_config.name, "trace"),
            jobs_seed=spawn_seed(config.seed, "fig8b", trace_config.name, "jobs"),
        )
        cluster = ClusterSpec(
            n_nodes=max(1, scaled.cluster_gpus // 8), gpus_per_node=8
        )
        points.append((trace_config.name, cluster, workload))

    names = list(policies)
    cells = [
        spec
        for _, cluster, workload in points
        for spec in policy_run_specs(names, cluster, workload, config)
    ]
    outcomes = run_specs(cells, workers=workers, cache=cache)

    rows: list[Fig8bRow] = []
    for position, (trace_name, _, workload) in enumerate(points):
        chunk = outcomes[position * len(names) : (position + 1) * len(names)]
        rows.append(
            Fig8bRow(
                trace=trace_name,
                cluster_gpus=workload.trace_config.cluster_gpus,
                n_jobs=workload.trace_config.n_jobs,
                ratios={
                    name: result.deadline_satisfactory_ratio
                    for name, result in zip(names, chunk)
                },
            )
        )
    return rows
