"""Fig 4 — the worked admission-control example.

Job C has the scaling curve (1 -> 1, 2 -> 1.5, 4 -> 2 units), a deadline of
2 time units, and 3 units of iterations to run.  Jobs A and B already hold
3 of the 4 GPUs for the first time unit.  The minimum satisfactory share of
C is therefore 1 GPU in the first slot and 4 GPUs in the second (4 + 1 = 5
units of GPU time), exactly Fig 4(c).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from types import MappingProxyType

import numpy as np

from repro.core.admission import PlanningJob, progressive_filling
from repro.core.slots import SlotGrid

__all__ = ["Fig4Result", "fig4_admission_example"]

CURVE: Mapping[int, float] = MappingProxyType({1: 1.0, 2: 1.5, 4: 2.0})


@dataclass(frozen=True)
class Fig4Result:
    """The computed minimum satisfactory share of job C."""

    plan: tuple[int, ...]
    gpu_time_alone: float
    gpu_time_contended: float
    iterations_achieved: float


def _job_c(grid: SlotGrid) -> PlanningJob:
    capacity = 4
    throughput_table = np.zeros(capacity + 1)
    size_table = np.zeros(capacity + 1, dtype=np.int64)
    best, best_thr = 0, 0.0
    for x in range(1, capacity + 1):
        if x in CURVE and CURVE[x] > best_thr:
            best, best_thr = x, CURVE[x]
        throughput_table[x] = best_thr
        size_table[x] = best
    return PlanningJob(
        job_id="c",
        remaining_iterations=3.0,
        deadline=2.0,
        weights=grid.weights_until(2.0),
        throughput_table=throughput_table,
        size_table=size_table,
        sizes=[1, 2, 4],
    )


def fig4_admission_example() -> Fig4Result:
    """Compute job C's minimum satisfactory share in both Fig 4 scenarios."""
    grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=3)

    # Fig 4(b): empty cluster — two GPUs for two slots suffice (4 GPU-time).
    alone = progressive_filling(_job_c(grid), np.full(3, 4))
    gpu_time_alone = float(np.sum(alone))

    # Fig 4(c): jobs A and B occupy 3 GPUs in slot 0.
    contended_capacity = np.array([1, 4, 4])
    info = _job_c(grid)
    contended = progressive_filling(info, contended_capacity)
    achieved = float(np.sum(info.throughput_table[contended] * info.weights))

    return Fig4Result(
        plan=tuple(int(x) for x in contended),
        gpu_time_alone=gpu_time_alone,
        gpu_time_contended=float(np.sum(contended)),
        iterations_achieved=achieved,
    )
