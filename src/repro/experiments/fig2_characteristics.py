"""Fig 2 — characteristics of distributed training jobs.

(a) Normalised scaling curves of the six Table 1 models.
(b) Throughput of an 8-GPU job under four placements (1, 2, 4, 8 servers)
    for ResNet50 and BERT, normalised to the 8-server placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiles.modelzoo import MODEL_ZOO
from repro.profiles.throughput import Placement, ThroughputModel

__all__ = ["ScalingSeries", "fig2a_scaling_curves", "fig2b_placement_throughput"]

#: GPU counts plotted on the Fig 2a x-axis.
FIG2A_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16)

#: Node spans plotted on the Fig 2b x-axis (8 GPUs each).
FIG2B_SPANS: tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class ScalingSeries:
    """One plotted line: a model's normalised throughput over the x-axis."""

    model: str
    global_batch: int
    xs: tuple[int, ...]
    speedups: tuple[float, ...]


def fig2a_scaling_curves(
    throughput: ThroughputModel | None = None,
    *,
    global_batch: int = 256,
) -> list[ScalingSeries]:
    """Normalised scaling curves for every Table 1 model (Fig 2a)."""
    model = throughput or ThroughputModel()
    series = []
    for name in sorted(MODEL_ZOO):
        curve = model.curve(name, global_batch)
        series.append(
            ScalingSeries(
                model=name,
                global_batch=global_batch,
                xs=FIG2A_SIZES,
                speedups=tuple(curve.speedup(n) for n in FIG2A_SIZES),
            )
        )
    return series


def fig2b_placement_throughput(
    throughput: ThroughputModel | None = None,
    *,
    models: tuple[str, ...] = ("resnet50", "bert"),
    global_batch: int = 256,
    n_gpus: int = 8,
) -> list[ScalingSeries]:
    """Throughput of an ``n_gpus`` job spread over 1..8 servers (Fig 2b).

    Values are normalised to the most scattered placement, so the paper's
    headline ("same-server is 2.17x the eight-server placement for
    ResNet50") reads directly off the first element.
    """
    model = throughput or ThroughputModel()
    series = []
    for name in models:
        curve = model.curve(name, global_batch)
        raw = [
            curve.throughput(n_gpus, Placement(n_gpus, span)) for span in FIG2B_SPANS
        ]
        base = raw[-1]
        series.append(
            ScalingSeries(
                model=name,
                global_batch=global_batch,
                xs=FIG2B_SPANS,
                speedups=tuple(value / base for value in raw),
            )
        )
    return series
