"""Fig 6 — end-to-end deadline satisfactory ratio on the testbed.

(a) A small 32-GPU cluster replaying a 25-job trace slice, compared across
    all seven schedulers (Pollux included).
(b) The full 128-GPU cluster with a 195-job slice, compared across six
    schedulers (the paper drops Pollux here for cost reasons; we include an
    option to keep it since simulation is free for us).

Shape targets from the paper: ElasticFlow first everywhere; on (b) it
improves deadlines met by 7.65x over EDF, 3.17x over Gandiva, 1.46x over
Tiresias, 1.71x over Themis, and 1.62x over Chronus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    ExperimentConfig,
    improvement_factors,
    run_policies,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.sim.metrics import SimulationResult

__all__ = ["Fig6Result", "fig6_deadline_satisfaction"]

SMALL_POLICIES = (
    "elasticflow",
    "edf",
    "gandiva",
    "tiresias",
    "themis",
    "chronus",
    "pollux",
)
LARGE_POLICIES = ("elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus")


@dataclass
class Fig6Result:
    """Outcome of one Fig 6 sub-experiment."""

    label: str
    results: dict[str, SimulationResult]

    @property
    def satisfactory_ratios(self) -> dict[str, float]:
        return {
            name: result.deadline_satisfactory_ratio
            for name, result in self.results.items()
        }

    @property
    def improvements(self) -> dict[str, float]:
        """ElasticFlow's deadlines-met multiple over each baseline."""
        return improvement_factors(self.results)

    def rows(self) -> list[tuple[str, float, int, int]]:
        return [
            (
                name,
                result.deadline_satisfactory_ratio,
                result.deadlines_met,
                result.dropped_count,
            )
            for name, result in self.results.items()
        ]


def fig6_deadline_satisfaction(
    *,
    scale: str = "small",
    config: ExperimentConfig | None = None,
    record_timeline: bool = False,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> Fig6Result:
    """Run Fig 6(a) (``scale='small'``) or Fig 6(b) (``scale='large'``)."""
    config = config or ExperimentConfig()
    if scale == "small":
        cluster, workload = testbed_workload_spec(
            config, cluster_gpus=32, n_jobs=25, target_load=2.0
        )
        policies = list(SMALL_POLICIES)
    elif scale == "large":
        cluster, workload = testbed_workload_spec(
            config, cluster_gpus=128, n_jobs=195, target_load=2.0
        )
        policies = list(LARGE_POLICIES)
    else:
        raise ValueError(f"scale must be 'small' or 'large', got {scale!r}")
    results = run_policies(
        policies,
        cluster,
        None,
        config,
        record_timeline=record_timeline,
        workers=workers,
        cache=cache,
        workload=workload,
    )
    return Fig6Result(label=f"fig6-{scale}", results=results)
