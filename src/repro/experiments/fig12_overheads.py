"""Fig 12 — system overheads of ElasticFlow.

(a) Pre-run profiling time per DNN model (the profiler measures throughput
    at doubling GPU counts per batch size and stops past the peak).
(b) Scaling/migration stall per model for the paper's five transition
    cases: 1 -> 8 GPUs, 8 -> 1, 4 -> 8, 8 -> 4, and an 8-GPU migration to
    another machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiles.modelzoo import MODEL_ZOO, TABLE1_SETTINGS, get_model
from repro.profiles.profiler import PreRunProfiler
from repro.profiles.throughput import ThroughputModel
from repro.sim.executor import ElasticExecutor

__all__ = [
    "ProfilingOverheadRow",
    "ScalingOverheadRow",
    "SCALING_CASES",
    "fig12a_profiling_overheads",
    "fig12b_scaling_overheads",
]

#: The five Fig 12(b) transition cases, as (old GPUs, new GPUs, label).
SCALING_CASES: tuple[tuple[int, int, str], ...] = (
    (1, 8, "1->8"),
    (8, 1, "8->1"),
    (4, 8, "4->8"),
    (8, 4, "8->4"),
    (8, 8, "migrate-8"),
)


@dataclass(frozen=True)
class ProfilingOverheadRow:
    """Pre-run profiling cost of one model (Fig 12a)."""

    model: str
    batch_sizes: tuple[int, ...]
    configurations_profiled: int
    overhead_minutes: float


@dataclass(frozen=True)
class ScalingOverheadRow:
    """Scaling/migration stalls of one model (Fig 12b)."""

    model: str
    seconds_by_case: dict[str, float]


def fig12a_profiling_overheads(
    throughput: ThroughputModel | None = None,
) -> list[ProfilingOverheadRow]:
    """Profile every Table 1 model and report the wall time spent."""
    model = throughput or ThroughputModel()
    profiler = PreRunProfiler(model)
    batches: dict[str, list[int]] = {}
    for name, batch in TABLE1_SETTINGS:
        batches.setdefault(name, []).append(batch)
    rows = []
    for name in sorted(MODEL_ZOO):
        report = profiler.profile(name, sorted(batches[name]))
        rows.append(
            ProfilingOverheadRow(
                model=name,
                batch_sizes=tuple(sorted(batches[name])),
                configurations_profiled=len(report.points),
                overhead_minutes=report.total_overhead_seconds / 60.0,
            )
        )
    return rows


def fig12b_scaling_overheads(
    executor: ElasticExecutor | None = None,
) -> list[ScalingOverheadRow]:
    """Scaling/migration stall seconds for the five paper cases."""
    executor = executor or ElasticExecutor()
    rows = []
    for name in sorted(MODEL_ZOO):
        profile = get_model(name)
        seconds = {}
        for old, new, label in SCALING_CASES:
            if label == "migrate-8":
                seconds[label] = executor.migration_overhead(profile, 8)
            else:
                seconds[label] = executor.scaling_overhead(profile, old, new)
        rows.append(ScalingOverheadRow(model=name, seconds_by_case=seconds))
    return rows
