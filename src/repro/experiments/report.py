"""Plain-text report formatting for experiment outputs.

The benchmark harness prints each experiment's rows in the same shape the
paper's table/figure reports, so a run of ``pytest benchmarks/`` doubles as
a regeneration of the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_series"]


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], *, x_label: str = "x"
) -> str:
    """Render one figure series as two aligned rows."""
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values"
        )
    x_cells = [_render(x) for x in xs]
    y_cells = [_render(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    label_width = max(len(name), len(x_label))
    header = x_label.ljust(label_width) + "  " + "  ".join(
        c.rjust(w) for c, w in zip(x_cells, widths)
    )
    values = name.ljust(label_width) + "  " + "  ".join(
        c.rjust(w) for c, w in zip(y_cells, widths)
    )
    return header + "\n" + values
