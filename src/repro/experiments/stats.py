"""Multi-seed statistics for the experiment drivers.

Single-trace results carry sampling noise from the synthetic workload; the
paper averages across ten traces (Fig 8b).  This module provides the
generic machinery: run any scalar-valued experiment over a list of seeds
and summarise with mean, standard deviation, and a normal-approximation
95 % confidence interval.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["SeedSweep", "sweep_seeds"]


@dataclass(frozen=True)
class SeedSweep:
    """Summary of one metric across seeds."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % interval."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple[float, float]:
        half = self.ci95_halfwidth
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        return f"{self.mean:.3f} +/- {self.ci95_halfwidth:.3f} (n={self.n})"


def sweep_seeds(metric: Callable[[int], float], seeds: list[int]) -> SeedSweep:
    """Evaluate ``metric(seed)`` for every seed and summarise.

    Raises:
        ConfigurationError: If no seeds are given or a metric value is not
            a finite number.
    """
    if not seeds:
        raise ConfigurationError("seeds must not be empty")
    values = []
    for seed in seeds:
        value = float(metric(seed))
        if not math.isfinite(value):
            raise ConfigurationError(
                f"metric returned a non-finite value {value} for seed {seed}"
            )
        values.append(value)
    return SeedSweep(values=tuple(values))
