"""Fig 10 — cluster efficiency of different schedulers.

The comparison must run the same set of jobs everywhere, so deadlines are
set loose enough (lambda = 1.5) that ElasticFlow admits everything.  The
paper's shape: ElasticFlow holds the highest cluster efficiency over the
early hours (its Algorithm 2 spends idle GPUs on the jobs that use them
best) and achieves the smallest makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    ExperimentConfig,
    run_policies,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.traces.deadlines import DeadlineAssigner

__all__ = ["Fig10Result", "fig10_cluster_efficiency"]

FIG10_POLICIES = ("elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus")


@dataclass
class Fig10Result:
    """Cluster-efficiency series and makespans for one run."""

    hours: dict[str, tuple[float, ...]]
    efficiency: dict[str, tuple[float, ...]]
    mean_efficiency: dict[str, float]
    makespan_h: dict[str, float]
    all_jobs_ran_everywhere: bool


def fig10_cluster_efficiency(
    *,
    config: ExperimentConfig | None = None,
    cluster_gpus: int = 128,
    n_jobs: int = 100,
    policies: tuple[str, ...] = FIG10_POLICIES,
    resolution_s: float = 1800.0,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> Fig10Result:
    """Run the Fig 10 fair comparison (loose deadlines, all jobs admitted)."""
    config = config or ExperimentConfig()
    cluster, workload = testbed_workload_spec(
        config,
        cluster_gpus=cluster_gpus,
        n_jobs=n_jobs,
        target_load=1.0,
        deadlines=DeadlineAssigner(1.5, 1.5),
    )
    results = run_policies(
        list(policies),
        cluster,
        None,
        config,
        record_timeline=True,
        workers=workers,
        cache=cache,
        workload=workload,
    )
    hours: dict[str, tuple[float, ...]] = {}
    efficiency: dict[str, tuple[float, ...]] = {}
    mean_efficiency: dict[str, float] = {}
    makespan: dict[str, float] = {}
    everyone_ran = True
    for name, result in results.items():
        timeline = result.timeline
        times, values = timeline.series(
            "cluster_efficiency", resolution_s=resolution_s
        )
        hours[name] = tuple(t / 3600.0 for t in times)
        efficiency[name] = tuple(values)
        mean_efficiency[name] = timeline.time_weighted_mean("cluster_efficiency")
        makespan[name] = result.makespan / 3600.0
        everyone_ran = everyone_ran and result.dropped_count == 0
    return Fig10Result(
        hours=hours,
        efficiency=efficiency,
        mean_efficiency=mean_efficiency,
        makespan_h=makespan,
        all_jobs_ran_everywhere=everyone_ran,
    )
