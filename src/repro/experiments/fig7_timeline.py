"""Fig 7 — scheduler behaviour over time on the testbed run.

(a) GPUs allocated over time for ElasticFlow versus the non-elastic
    baselines — ElasticFlow soaks up idle GPUs when contention is low.
(b) Cumulative submitted and admitted job counts for ElasticFlow — under
    the submission burst some jobs are dropped to protect admitted
    deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.fig6_endtoend import fig6_deadline_satisfaction
from repro.experiments.harness import ExperimentConfig
from repro.parallel.cache import RunCache

__all__ = ["Fig7Series", "fig7_timelines"]


@dataclass(frozen=True)
class Fig7Series:
    """One policy's sampled time series."""

    policy: str
    hours: tuple[float, ...]
    gpus_in_use: tuple[float, ...]
    submitted: tuple[float, ...]
    admitted: tuple[float, ...]


def fig7_timelines(
    *,
    config: ExperimentConfig | None = None,
    policies: tuple[str, ...] = ("elasticflow", "edf", "gandiva", "tiresias"),
    resolution_s: float = 1800.0,
    scale: str = "large",
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> dict[str, Fig7Series]:
    """Regenerate the Fig 7 time series from the Fig 6 run."""
    outcome = fig6_deadline_satisfaction(
        scale=scale, config=config, record_timeline=True, workers=workers, cache=cache
    )
    series: dict[str, Fig7Series] = {}
    for policy in policies:
        if policy not in outcome.results:
            raise ConfigurationError(
                f"policy {policy!r} was not part of the fig6 {scale} run"
            )
        timeline = outcome.results[policy].timeline
        times, gpus = timeline.series("gpus_in_use", resolution_s=resolution_s)
        _, submitted = timeline.series("submitted", resolution_s=resolution_s)
        _, admitted = timeline.series("admitted", resolution_s=resolution_s)
        series[policy] = Fig7Series(
            policy=policy,
            hours=tuple(t / 3600.0 for t in times),
            gpus_in_use=tuple(gpus),
            submitted=tuple(submitted),
            admitted=tuple(admitted),
        )
    return series
