"""Fig 9 — sources of improvement in ElasticFlow.

The cluster size varies while the workload stays fixed, and four schedulers
are compared: plain EDF, EDF + Admission Control, EDF + Elastic Scaling,
and full ElasticFlow.  Shape targets from the paper: both ingredients
matter (either variant alone trails ElasticFlow); the EDF+ES-to-ElasticFlow
gap narrows as the cluster grows (admission control matters most when GPUs
are scarce).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentConfig, run_policies, testbed_workload

__all__ = ["Fig9Row", "fig9_sources_of_improvement"]

ABLATION_POLICIES = ("edf", "edf+ac", "edf+es", "elasticflow")


@dataclass
class Fig9Row:
    """Deadline satisfactory ratios at one cluster size."""

    cluster_gpus: int
    ratios: dict[str, float]


def fig9_sources_of_improvement(
    *,
    config: ExperimentConfig | None = None,
    cluster_sizes: tuple[int, ...] = (32, 64, 128, 256),
    n_jobs: int = 120,
    workload_gpus: int = 64,
    target_load: float = 1.4,
) -> list[Fig9Row]:
    """Sweep cluster sizes under a fixed workload (Fig 9).

    The workload is generated once against ``workload_gpus`` so the offered
    load in absolute GPU-hours is identical at every cluster size.
    """
    config = config or ExperimentConfig()
    if any(size % 8 for size in cluster_sizes):
        raise ConfigurationError("cluster sizes must be multiples of 8")
    _, specs = testbed_workload(
        config,
        cluster_gpus=workload_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
    )
    rows: list[Fig9Row] = []
    for size in cluster_sizes:
        cluster = ClusterSpec(n_nodes=size // 8, gpus_per_node=8)
        results = run_policies(list(ABLATION_POLICIES), cluster, specs, config)
        rows.append(
            Fig9Row(
                cluster_gpus=size,
                ratios={
                    name: result.deadline_satisfactory_ratio
                    for name, result in results.items()
                },
            )
        )
    return rows
