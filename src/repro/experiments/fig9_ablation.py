"""Fig 9 — sources of improvement in ElasticFlow.

The cluster size varies while the workload stays fixed, and four schedulers
are compared: plain EDF, EDF + Admission Control, EDF + Elastic Scaling,
and full ElasticFlow.  Shape targets from the paper: both ingredients
matter (either variant alone trails ElasticFlow); the EDF+ES-to-ElasticFlow
gap narrows as the cluster grows (admission control matters most when GPUs
are scarce).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigurationError
from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.parallel.engine import run_specs

__all__ = ["Fig9Row", "fig9_sources_of_improvement"]

ABLATION_POLICIES = ("edf", "edf+ac", "edf+es", "elasticflow")


@dataclass
class Fig9Row:
    """Deadline satisfactory ratios at one cluster size."""

    cluster_gpus: int
    ratios: dict[str, float]


def fig9_sources_of_improvement(
    *,
    config: ExperimentConfig | None = None,
    cluster_sizes: tuple[int, ...] = (32, 64, 128, 256),
    n_jobs: int = 120,
    workload_gpus: int = 64,
    target_load: float = 1.4,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> list[Fig9Row]:
    """Sweep cluster sizes under a fixed workload (Fig 9).

    The workload is generated once against ``workload_gpus`` so the offered
    load in absolute GPU-hours is identical at every cluster size; the
    (size x policy) grid fans out as one batch through the parallel engine.
    """
    config = config or ExperimentConfig()
    if any(size % 8 for size in cluster_sizes):
        raise ConfigurationError("cluster sizes must be multiples of 8")
    _, workload = testbed_workload_spec(
        config,
        cluster_gpus=workload_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
    )
    names = list(ABLATION_POLICIES)
    cells = [
        spec
        for size in cluster_sizes
        for spec in policy_run_specs(
            names,
            ClusterSpec(n_nodes=size // 8, gpus_per_node=8),
            workload,
            config,
        )
    ]
    outcomes = run_specs(cells, workers=workers, cache=cache)
    rows: list[Fig9Row] = []
    for position, size in enumerate(cluster_sizes):
        chunk = outcomes[position * len(names) : (position + 1) * len(names)]
        rows.append(
            Fig9Row(
                cluster_gpus=size,
                ratios={
                    name: result.deadline_satisfactory_ratio
                    for name, result in zip(names, chunk)
                },
            )
        )
    return rows
