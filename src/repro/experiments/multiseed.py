"""Multi-seed replication of the headline comparison, engine-backed.

:func:`repro.experiments.stats.sweep_seeds` runs an arbitrary scalar
metric serially; this module is the common case done properly — the
deadline satisfactory ratio of each policy across seeds, expressed as one
flat (seed x policy) grid of run specs so the parallel engine overlaps
whole replications and the run cache makes incremental seed additions
cheap (previously-run seeds are hits).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
    testbed_workload_spec,
)
from repro.experiments.stats import SeedSweep
from repro.parallel.cache import RunCache
from repro.parallel.engine import run_specs

__all__ = ["multiseed_satisfactory_ratios"]


def multiseed_satisfactory_ratios(
    policy_names: Sequence[str],
    seeds: Sequence[int],
    *,
    config: ExperimentConfig | None = None,
    cluster_gpus: int = 32,
    n_jobs: int = 25,
    target_load: float = 2.0,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> dict[str, SeedSweep]:
    """Deadline satisfactory ratio per policy, summarised across seeds.

    Each seed regenerates the testbed workload (fresh trace and model
    assignment); every policy replays each seed's workload.  Returns one
    :class:`SeedSweep` per policy, values in seed order.

    Raises:
        ConfigurationError: For an empty policy or seed list.
    """
    if not policy_names:
        raise ConfigurationError("policy_names must not be empty")
    if not seeds:
        raise ConfigurationError("seeds must not be empty")
    config = config or ExperimentConfig()
    names = list(policy_names)
    cells = []
    for seed in seeds:
        seeded = replace(config, seed=int(seed))
        cluster, workload = testbed_workload_spec(
            seeded,
            cluster_gpus=cluster_gpus,
            n_jobs=n_jobs,
            target_load=target_load,
        )
        cells.extend(policy_run_specs(names, cluster, workload, seeded))
    outcomes = run_specs(cells, workers=workers, cache=cache)
    per_policy: dict[str, list[float]] = {name: [] for name in names}
    for position in range(len(seeds)):
        chunk = outcomes[position * len(names) : (position + 1) * len(names)]
        for name, result in zip(names, chunk):
            per_policy[name].append(result.deadline_satisfactory_ratio)
    return {
        name: SeedSweep(values=tuple(values)) for name, values in per_policy.items()
    }
