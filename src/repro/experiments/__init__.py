"""Experiment drivers — one per table and figure of the paper's evaluation.

Each module reproduces one artifact of Section 6 (or one of the design
figures in Sections 3-4) and returns plain data structures the benchmark
harness prints as the rows/series the paper reports.  Absolute numbers come
from our analytic substrate, so the *shapes* — who wins, by what rough
factor, where crossovers sit — are what EXPERIMENTS.md tracks against the
paper.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    run_policies,
    testbed_workload,
    testbed_workload_spec,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.table1 import table1_models
from repro.experiments.fig2_characteristics import (
    fig2a_scaling_curves,
    fig2b_placement_throughput,
)
from repro.experiments.fig3_edf import fig3_edf_example
from repro.experiments.fig4_admission import fig4_admission_example
from repro.experiments.fig6_endtoend import fig6_deadline_satisfaction
from repro.experiments.fig7_timeline import fig7_timelines
from repro.experiments.fig8_simulation import fig8a_with_pollux, fig8b_trace_sweep
from repro.experiments.fig9_ablation import fig9_sources_of_improvement
from repro.experiments.fig10_efficiency import fig10_cluster_efficiency
from repro.experiments.fig11_besteffort import fig11_best_effort_mix
from repro.experiments.fig12_overheads import (
    fig12a_profiling_overheads,
    fig12b_scaling_overheads,
)
from repro.experiments.lambda_sweep import lambda_tightness_sweep
from repro.experiments.multiseed import multiseed_satisfactory_ratios
from repro.experiments.oracle import clairvoyant_max_admissions
from repro.experiments.stats import SeedSweep, sweep_seeds

__all__ = [
    "ExperimentConfig",
    "run_policies",
    "testbed_workload",
    "testbed_workload_spec",
    "format_series",
    "format_table",
    "table1_models",
    "fig2a_scaling_curves",
    "fig2b_placement_throughput",
    "fig3_edf_example",
    "fig4_admission_example",
    "fig6_deadline_satisfaction",
    "fig7_timelines",
    "fig8a_with_pollux",
    "fig8b_trace_sweep",
    "fig9_sources_of_improvement",
    "fig10_cluster_efficiency",
    "fig11_best_effort_mix",
    "fig12a_profiling_overheads",
    "fig12b_scaling_overheads",
    "lambda_tightness_sweep",
    "multiseed_satisfactory_ratios",
    "clairvoyant_max_admissions",
    "SeedSweep",
    "sweep_seeds",
]
