"""Self-consistency validation of simulation results.

The paper validates its simulator against a real testbed (<= 3 % error,
Section 6.1).  Users of this library bringing their own policies get the
offline analogue: :func:`validate_result` re-derives every completed job's
work by integrating throughput over the recorded allocation timeline —
completely independently of the engine's event arithmetic — and reports
any disagreement.  A clean report means the engine's closed-form completion
projections, its piecewise progress accounting, and the recorded timeline
all tell the same story.

Only overhead-free runs validate exactly; with overheads enabled the
integration over-counts stalled intervals, so the validator reports the
stall budget it would need to reconcile each job instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.job import JobSpec
from repro.errors import ConfigurationError
from repro.profiles.throughput import ThroughputModel
from repro.sim.metrics import SimulationResult

__all__ = ["JobValidation", "ValidationReport", "validate_result"]


@dataclass(frozen=True)
class JobValidation:
    """Reconciliation of one completed job.

    Attributes:
        job_id: The job.
        expected_iterations: The termination condition.
        integrated_iterations: Work recovered by integrating throughput over
            the recorded allocation segments (stall-blind).
        implied_stall_seconds: Stall time that reconciles the two — zero in
            an overhead-free run; the executor's charged stalls otherwise.
        relative_error: ``|integrated - expected| / expected`` after
            removing the implied stall (0 for a consistent run).
    """

    job_id: str
    expected_iterations: float
    integrated_iterations: float
    implied_stall_seconds: float
    relative_error: float


@dataclass
class ValidationReport:
    """Outcome of validating one simulation result."""

    jobs: list[JobValidation] = field(default_factory=list)
    tolerance: float = 1e-5

    @property
    def max_relative_error(self) -> float:
        return max((job.relative_error for job in self.jobs), default=0.0)

    @property
    def consistent(self) -> bool:
        """Whether every completed job reconciles within tolerance."""
        return self.max_relative_error <= self.tolerance

    @property
    def total_implied_stall_seconds(self) -> float:
        return sum(job.implied_stall_seconds for job in self.jobs)


def validate_result(
    result: SimulationResult,
    specs: list[JobSpec],
    throughput: ThroughputModel,
    *,
    tolerance: float = 1e-5,
) -> ValidationReport:
    """Cross-check a simulation result against its own timeline.

    Args:
        result: A result produced with ``record_timeline=True``.
        specs: The workload that was simulated.
        throughput: The throughput model the engine ran with.
        tolerance: Relative-error bound for :attr:`ValidationReport.consistent`.

    Raises:
        ConfigurationError: If the result has no timeline or a spec is
            missing for a completed job.
    """
    if result.timeline is None:
        raise ConfigurationError(
            "result has no timeline; run the simulator with record_timeline=True"
        )
    by_id = {spec.job_id: spec for spec in specs}
    samples = result.timeline.samples
    report = ValidationReport(tolerance=tolerance)
    for outcome in result.outcomes:
        if outcome.completion_time is None:
            continue
        spec = by_id.get(outcome.job_id)
        if spec is None:
            raise ConfigurationError(
                f"no spec supplied for completed job {outcome.job_id!r}"
            )
        curve = throughput.curve(spec.model_name, spec.global_batch_size)
        integrated = 0.0
        final_rate = 0.0
        for current, nxt in zip(samples, samples[1:]):
            gpus = current.allocations.get(spec.job_id, 0)
            if gpus <= 0:
                continue
            rate = curve.effective_throughput(gpus)
            integrated += rate * (nxt.time - current.time)
            final_rate = max(final_rate, rate)
        # The integration counts stalled wall-clock as productive; the
        # surplus over the true work, converted at the job's rate, is the
        # stall the executor charged.
        surplus = integrated - spec.max_iterations
        if surplus > 0 and final_rate > 0:
            implied_stall = surplus / final_rate
            residual = 0.0
        else:
            implied_stall = 0.0
            residual = abs(surplus) / spec.max_iterations
        report.jobs.append(
            JobValidation(
                job_id=spec.job_id,
                expected_iterations=float(spec.max_iterations),
                integrated_iterations=integrated,
                implied_stall_seconds=implied_stall,
                relative_error=residual,
            )
        )
    return report
