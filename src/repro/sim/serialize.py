"""Lossless JSON serialisation of simulation results.

The run cache persists every completed :class:`SimulationResult` and the
equivalence harness compares runs byte-for-byte, so the encoding must be
canonical (sorted keys, no whitespace) and *total*: every float a result
can legally contain — including ``inf`` deadlines on best-effort jobs and
``nan`` ratios on empty pools — must round-trip.  Plain ``json.dumps``
emits non-standard ``Infinity``/``NaN`` literals for those, which other
parsers reject; instead non-finite floats are encoded as the strings
``"inf"``, ``"-inf"`` and ``"nan"``, and ``None`` stays ``null``.  The
same convention is applied by :func:`sanitize_for_json` to the metric
dictionaries the reports and the CLI emit (``improvement_factors`` returns
``inf`` when a baseline meets zero deadlines).

This module is pure in-memory transformation; file handling belongs to
the callers (:mod:`repro.parallel.cache`, the CLI).
"""

from __future__ import annotations

import json
import math

from repro.core.job import JobStatus
from repro.errors import ConfigurationError
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.recorder import Timeline, TimelineSample

__all__ = [
    "encode_float",
    "decode_float",
    "sanitize_for_json",
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "result_from_json",
]


def encode_float(value: float | None) -> float | str | None:
    """One float in the canonical encoding (non-finite -> string)."""
    if value is None:
        return None
    value = float(value)
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):
        return "nan"
    return value


def decode_float(value: float | int | str | None) -> float | None:
    """Inverse of :func:`encode_float`.

    Raises:
        ConfigurationError: For a string that is not one of the three
            non-finite markers.
    """
    if value is None:
        return None
    if isinstance(value, str):
        try:
            return {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}[value]
        except KeyError:
            raise ConfigurationError(
                f"invalid encoded float {value!r}; expected 'inf', '-inf' or 'nan'"
            ) from None
    return float(value)


def sanitize_for_json(value):
    """Recursively apply the float encoding to a report structure.

    Use this before ``json.dumps`` on any metric dictionary that may carry
    ``inf``/``nan`` (policy summaries, improvement factors), so the output
    is strict JSON every consumer can parse.
    """
    if isinstance(value, float):
        return encode_float(value)
    if isinstance(value, dict):
        return {key: sanitize_for_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_for_json(item) for item in value]
    return value


# ------------------------------------------------------------------ outcomes
def _outcome_to_dict(outcome: JobOutcome) -> dict:
    return {
        "job_id": outcome.job_id,
        "model_name": outcome.model_name,
        "submit_time": encode_float(outcome.submit_time),
        "deadline": encode_float(outcome.deadline),
        "best_effort": outcome.best_effort,
        "status": outcome.status.value,
        "admitted": outcome.admitted,
        "completion_time": encode_float(outcome.completion_time),
        "scale_events": outcome.scale_events,
    }


def _outcome_from_dict(data: dict) -> JobOutcome:
    return JobOutcome(
        job_id=data["job_id"],
        model_name=data["model_name"],
        submit_time=decode_float(data["submit_time"]),
        deadline=decode_float(data["deadline"]),
        best_effort=bool(data["best_effort"]),
        status=JobStatus(data["status"]),
        admitted=bool(data["admitted"]),
        completion_time=decode_float(data["completion_time"]),
        scale_events=int(data["scale_events"]),
    )


# ------------------------------------------------------------------ timeline
def _sample_to_dict(sample: TimelineSample) -> dict:
    return {
        "time": encode_float(sample.time),
        "gpus_in_use": sample.gpus_in_use,
        "cluster_efficiency": encode_float(sample.cluster_efficiency),
        "running_jobs": sample.running_jobs,
        "submitted": sample.submitted,
        "admitted": sample.admitted,
        "allocations": {k: sample.allocations[k] for k in sorted(sample.allocations)},
    }


def _sample_from_dict(data: dict) -> TimelineSample:
    return TimelineSample(
        time=decode_float(data["time"]),
        gpus_in_use=int(data["gpus_in_use"]),
        cluster_efficiency=decode_float(data["cluster_efficiency"]),
        running_jobs=int(data["running_jobs"]),
        submitted=int(data["submitted"]),
        admitted=int(data["admitted"]),
        allocations={k: int(v) for k, v in data["allocations"].items()},
    )


def _timeline_to_list(timeline: Timeline | None) -> list[dict] | None:
    if timeline is None:
        return None
    return [_sample_to_dict(sample) for sample in timeline.samples]


def _timeline_from_list(data: list[dict] | None) -> Timeline | None:
    if data is None:
        return None
    timeline = Timeline()
    for item in data:
        timeline.record(_sample_from_dict(item))
    return timeline


# -------------------------------------------------------------------- result
_SCHEMA = 1


def result_to_dict(result: SimulationResult) -> dict:
    """A plain-JSON dictionary capturing one result losslessly."""
    return {
        "schema": _SCHEMA,
        "policy_name": result.policy_name,
        "outcomes": [_outcome_to_dict(outcome) for outcome in result.outcomes],
        "timeline": _timeline_to_list(result.timeline),
        "total_gpus": result.total_gpus,
        "events_processed": result.events_processed,
    }


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output.

    Raises:
        ConfigurationError: For an unknown schema version or malformed data.
    """
    try:
        schema = data["schema"]
        if schema != _SCHEMA:
            raise ConfigurationError(f"unknown result schema {schema!r}")
        return SimulationResult(
            policy_name=data["policy_name"],
            outcomes=[_outcome_from_dict(item) for item in data["outcomes"]],
            timeline=_timeline_from_list(data["timeline"]),
            total_gpus=int(data["total_gpus"]),
            events_processed=int(data["events_processed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed serialized result: {exc}") from exc


def result_to_json(result: SimulationResult) -> str:
    """Canonical JSON text of one result (byte-comparable across runs)."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def result_from_json(text: str) -> SimulationResult:
    """Inverse of :func:`result_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed serialized result: {exc}") from exc
    return result_from_dict(data)
