"""Elastic training executor overhead model (paper Sections 5 and 6.6).

The prototype scales jobs by checkpointing parameters and restarting the
job on the new worker set.  Fig 12b shows the overhead is dominated by
PyTorch's checkpoint/restore and is broadly similar whether a job grows,
shrinks, or migrates; we model it as a serialisation term (checkpoint plus
restore of weights and optimizer state) plus a fixed framework restart cost
and a small per-worker process term.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.profiles.modelzoo import ModelProfile

__all__ = ["ElasticExecutor"]


class ElasticExecutor:
    """Charges wall-clock overhead for scaling and migration events.

    Args:
        framework_base_s: Fixed cost of tearing down and relaunching the
            distributed training loop (NCCL groups are kept alive, but the
            dataloaders and DDP wrappers are rebuilt).
        per_gpu_restart_s: Additional cost per worker in the larger of the
            old/new configurations.
        serialization_mb_per_s: Effective checkpoint serialisation bandwidth
            (Python-side ``torch.save``/``torch.load``, not raw disk speed).
        enabled: When ``False`` every overhead is zero — used to check the
            hard guarantee in isolation.
    """

    def __init__(
        self,
        *,
        framework_base_s: float = 8.0,
        per_gpu_restart_s: float = 0.4,
        serialization_mb_per_s: float = 250.0,
        enabled: bool = True,
    ) -> None:
        if framework_base_s < 0 or per_gpu_restart_s < 0:
            raise ConfigurationError("overhead constants must be >= 0")
        if serialization_mb_per_s <= 0:
            raise ConfigurationError(
                f"serialization_mb_per_s must be > 0, "
                f"got {serialization_mb_per_s}"
            )
        self.framework_base_s = framework_base_s
        self.per_gpu_restart_s = per_gpu_restart_s
        self.serialization_mb_per_s = serialization_mb_per_s
        self.enabled = enabled

    def _serialization_seconds(self, model: ModelProfile) -> float:
        return model.checkpoint_bytes / (self.serialization_mb_per_s * 1e6)

    def scaling_overhead(
        self, model: ModelProfile, old_gpus: int, new_gpus: int
    ) -> float:
        """Seconds of stall when a job's worker count changes.

        ``old_gpus == 0`` is a cold start (restore only); ``new_gpus == 0``
        is a suspension (checkpoint only).
        """
        if old_gpus < 0 or new_gpus < 0:
            raise ConfigurationError("GPU counts must be >= 0")
        if not self.enabled:
            return 0.0
        if old_gpus == new_gpus == 0:
            return 0.0
        serialization = 0.0
        if old_gpus > 0:
            serialization += self._serialization_seconds(model)  # checkpoint
        if new_gpus > 0:
            serialization += self._serialization_seconds(model)  # restore
        workers = max(old_gpus, new_gpus)
        return self.framework_base_s + serialization + self.per_gpu_restart_s * workers

    def migration_overhead(self, model: ModelProfile, n_gpus: int) -> float:
        """Seconds of stall when a job keeps its size but changes GPUs."""
        if n_gpus < 1:
            raise ConfigurationError(f"n_gpus must be >= 1, got {n_gpus}")
        return self.scaling_overhead(model, n_gpus, n_gpus)

    @staticmethod
    def disabled() -> "ElasticExecutor":
        """An executor that charges nothing (ideal, overhead-free world)."""
        return ElasticExecutor(enabled=False)
