"""The discrete-event simulation engine.

The engine owns all runtime state: job progress, placement, scaling
overheads, and the event queue.  Policies are consulted at every scheduling
event — job arrival, job completion, and a periodic re-plan tick of one
planning slot — and return only a GPU count per active job; the engine
translates those counts into buddy-allocated placements, charges executor
overheads to every job whose worker set changed, and advances training
progress exactly between events.
"""

from __future__ import annotations

import bisect
import heapq
import itertools

import numpy as np

from repro.cluster.placement import PlacementManager
from repro.cluster.topology import ClusterSpec
from repro.core.job import Job, JobSpec, JobStatus
from repro.errors import PlacementError, SchedulingError, SimulationError
from repro.numeric import EPS, is_power_of_two
from repro.perf import probe
from repro.perf.coherence import coherent, invalidates, keyed, mutates
from repro.perf.tables import (
    cache_enabled,
    curve_revision,
    sim_vector_enabled,
    tables_global_revision,
)
from repro.profiles.throughput import Placement, ThroughputModel
from repro.sim.events import Event, EventKind
from repro.sim.executor import ElasticExecutor
from repro.sim.failures import FailureSchedule
from repro.sim.interface import PolicyContext, SchedulerPolicy
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.recorder import Timeline, TimelineSample

__all__ = ["Simulator"]

_COMPLETION_EPS = 1e-3  # iterations of slack when declaring completion


class _ProgressSoA:
    """Stacked progress state of the currently running jobs.

    One row per job that was ``RUNNING`` with a placement when the last
    reallocation committed, in ``_active`` iteration order (insertion ==
    admission order — the same order the scalar loop visits).  The arrays
    mirror exactly the fields :meth:`repro.core.job.Job.advance` touches,
    so one numpy expression advances every running job at once; rates are
    the ones ``_reallocate`` already derived for completion projection, so
    the vector path performs zero per-advance memo lookups.

    ``revision`` pins the planning-table global revision the rates were
    computed under: an online-profiling curve correction bumps it, which
    makes :meth:`Simulator._advance_to` fall back to the scalar path (and
    drop this frame) instead of advancing on stale rates.
    """

    __slots__ = (
        "jobs",
        "rates",
        "stall",
        "gpus",
        "max_iters",
        "iters",
        "gsec",
        "revision",
    )

    def __init__(self, jobs: list[Job], rates: list[float], revision: int) -> None:
        self.jobs = jobs
        self.rates = np.asarray(rates, dtype=np.float64)
        self.stall = np.array([job.stall_until for job in jobs], dtype=np.float64)
        self.gpus = np.array([job.n_gpus for job in jobs], dtype=np.float64)
        self.max_iters = np.array(
            [float(job.spec.max_iterations) for job in jobs], dtype=np.float64
        )
        self.iters = np.array([job.iterations_done for job in jobs], dtype=np.float64)
        self.gsec = np.array([job.gpu_seconds for job in jobs], dtype=np.float64)
        self.revision = revision

    def advance(self, window: float, now: float) -> None:
        """Vectorized :meth:`Job.advance` over every row, then write back.

        Each elementwise operation replays the scalar method's expression
        in the same order on the same float64 values, so the written-back
        ``iterations_done``/``gpu_seconds`` are bit-identical to a scalar
        walk.  Write-back is eager because event handlers (completion
        guards, checkpointing on reallocation) read the job objects.
        """
        start = now - window
        productive = window - np.maximum(0.0, np.minimum(self.stall, now) - start)
        bad = productive < 0
        if bad.any():
            job = self.jobs[int(np.argmax(bad))]
            raise SchedulingError(
                f"job {job.job_id}: stall accounting produced negative time"
            )
        np.minimum(self.max_iters, self.iters + productive * self.rates, out=self.iters)
        self.gsec += productive * self.gpus
        for job, done, gsec in zip(self.jobs, self.iters.tolist(), self.gsec.tolist()):
            job.iterations_done = done
            job.gpu_seconds = gsec


@coherent(_alloc_version="event_projections", _soa="sim_soa")
@keyed(_rate_memo="curve_revision")
class Simulator:
    """Replays a workload against one scheduler policy.

    Args:
        cluster: Cluster shape (nodes x GPUs per node).
        policy: The scheduler under test; bound to this cluster.
        specs: Jobs to submit, any order; arrivals fire at their
            ``submit_time``.
        throughput: Throughput model shared by the policy and the engine
            (the paper's profiled curves).  A default model is built when
            omitted.
        slot_seconds: Planning-slot width and periodic re-plan interval.
        executor: Overhead model for elastic scaling; defaults to the
            calibrated PyTorch checkpoint/restore model.
        record_timeline: Keep per-event cluster samples (Figs 7 and 10).
        record_efficiency: Compute the per-sample cluster-efficiency sum
            (Eq. 8, one scaling-curve lookup per running job per event).
            Only Fig 10 reads it; sweeps that only need outcomes can turn
            it off and keep the rest of the timeline.  Ignored when
            ``record_timeline`` is off — that path never touches the
            speedup curves at all.
        max_events: Safety valve against pathological policies.
        failures: Optional node-outage schedule to replay (Section 4.4's
            "node failures" extension).  A failing node evicts its jobs;
            the policy sees the reduced ``usable_gpus`` until repair.
        observation_hook: Optional callback ``(job, n_gpus, rate)`` invoked
            whenever a running job's progress is advanced — the Section 5
            during-execution throughput-profiling feed (see
            :class:`repro.profiles.online.OnlineThroughputModel`).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        policy: SchedulerPolicy,
        specs: list[JobSpec],
        *,
        throughput: ThroughputModel | None = None,
        slot_seconds: float = 300.0,
        executor: ElasticExecutor | None = None,
        record_timeline: bool = True,
        record_efficiency: bool = True,
        max_events: int = 2_000_000,
        failures: FailureSchedule | None = None,
        observation_hook=None,
    ) -> None:
        if max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events}")
        ids = [spec.job_id for spec in specs]
        if len(ids) != len(set(ids)):
            raise SimulationError("job ids must be unique")
        self.cluster = cluster
        self.policy = policy
        self.throughput = throughput or ThroughputModel()
        self.slot_seconds = slot_seconds
        self.executor = executor or ElasticExecutor()
        self.max_events = max_events
        self.failures = failures or FailureSchedule.none()
        self.observation_hook = observation_hook
        self.context = PolicyContext(
            cluster=cluster, throughput=self.throughput, slot_seconds=slot_seconds
        )
        policy.bind(self.context)

        self.jobs: dict[str, Job] = {}
        # Kept sorted by (submit_time, job_id) — the initial sort fixes the
        # arrival-event sequence numbers (tie-break determinism) and
        # ``submit`` maintains the order with an insort.
        self._specs = sorted(specs, key=lambda s: (s.submit_time, s.job_id))
        self._spec_by_id = {spec.job_id: spec for spec in self._specs}
        self._placement = PlacementManager(cluster)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._alloc_version = 0
        self._now = 0.0
        self._last_advance = 0.0
        self._events_processed = 0
        self._submitted = 0
        self._admitted = 0
        # Jobs still needing scheduling attention, in admission order
        # (which equals arrival order).  Maintained at every status
        # transition so the per-event loops never scan completed jobs.
        self._active: dict[str, Job] = {}
        # Versioned-event bookkeeping: superseded COMPLETION/REPLAN events
        # are counted and periodically compacted out of the heap so it
        # cannot grow monotonically over a long trace.
        self._live_versioned = 0
        self._stale_versioned = 0
        # Memoized placement-dependent rates: a job's throughput is a pure
        # function of (curve, size, nodes spanned), so re-deriving it for
        # every advance of every running job is wasted work.  The memo is
        # nested by job id so a completed job's entries can be dropped in
        # one pop (see _evict_rates); inner keys carry the curve's
        # invalidation revision (see repro.perf.tables), so an
        # online-profiling correction transparently invalidates the entry.
        self._rate_memo: dict[str, dict[tuple[int, int, int], float]] = {}
        # Stacked progress arrays for the running set, rebuilt by
        # _rebuild_soa at every reallocation; None whenever the vector
        # advance path is unavailable (hatch off, observation hook
        # installed, or no running jobs).
        self._soa: _ProgressSoA | None = None
        self.timeline = Timeline() if record_timeline else None
        self._record_efficiency = record_efficiency
        for spec in self._specs:
            self._push(Event(spec.submit_time, EventKind.ARRIVAL, next(self._seq), spec.job_id))
        for window in self.failures.windows:
            if window.node_index >= cluster.n_nodes:
                raise SimulationError(
                    f"failure schedule names node {window.node_index} on a "
                    f"{cluster.n_nodes}-node cluster"
                )
            self._push(
                Event(window.start, EventKind.NODE_FAILURE, next(self._seq),
                      str(window.node_index))
            )
            self._push(
                Event(window.end, EventKind.NODE_REPAIR, next(self._seq),
                      str(window.node_index))
            )

    # ----------------------------------------------------------------- API
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def submit(self, spec: JobSpec) -> None:
        """Register a job while the simulation is (partially) running.

        Supports the interactive serverless front end: jobs may be
        submitted between :meth:`run_until` calls as long as their
        ``submit_time`` has not already passed.  ``self._specs`` stays
        sorted by (submit_time, job_id); note that event tie-breaking for
        equal submit times still follows submission-call order for late
        submissions (their events get later sequence numbers).

        Raises:
            SimulationError: On a duplicate id or a submission in the past.
        """
        if spec.job_id in self._spec_by_id:
            raise SimulationError(f"job id {spec.job_id!r} already submitted")
        if spec.submit_time < self._now:
            raise SimulationError(
                f"cannot submit {spec.job_id!r} at {spec.submit_time} "
                f"(simulation time is already {self._now})"
            )
        self._spec_by_id[spec.job_id] = spec
        bisect.insort(self._specs, spec, key=lambda s: (s.submit_time, s.job_id))
        self._push(
            Event(spec.submit_time, EventKind.ARRIVAL, next(self._seq), spec.job_id)
        )

    def run(self) -> SimulationResult:
        """Process every event and return the collected metrics."""
        self._drain(until=None)
        self._check_no_starvation()
        return self.result()

    def run_until(self, time: float) -> None:
        """Process events up to (and including) ``time``, then stop there.

        Active jobs keep their allocations; the caller may submit more jobs
        and continue with further ``run_until``/``run`` calls.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run to {time}: simulation time is already {self._now}"
            )
        self._drain(until=time)
        self._advance_to(time)

    def result(self) -> SimulationResult:
        """Metrics for everything processed so far."""
        return SimulationResult(
            policy_name=self.policy.name,
            outcomes=[JobOutcome.from_job(job) for job in self.jobs.values()],
            timeline=self.timeline,
            total_gpus=self.cluster.total_gpus,
            events_processed=self._events_processed,
        )

    def _drain(self, *, until: float | None) -> None:
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            event = heapq.heappop(self._heap)
            if event.kind is EventKind.COMPLETION or event.kind is EventKind.REPLAN:
                if event.version == self._alloc_version:
                    self._live_versioned -= 1
                else:
                    self._stale_versioned -= 1
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events; the policy is likely "
                    f"starving a job"
                )
            self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Advance time to one event and apply it.

        Split out of :meth:`_drain` so instrumentation (the perf harness's
        per-event latency probe) can wrap exactly one event's work.
        """
        self._advance_to(event.time)
        if event.kind is EventKind.ARRIVAL:
            self._handle_arrival(event)
        elif event.kind is EventKind.COMPLETION:
            self._handle_completion(event)
        elif event.kind is EventKind.NODE_FAILURE:
            self._handle_node_failure(event)
        elif event.kind is EventKind.NODE_REPAIR:
            self._handle_node_repair(event)
        else:
            self._handle_replan(event)

    # -------------------------------------------------------------- events
    def _push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        if event.kind is EventKind.COMPLETION or event.kind is EventKind.REPLAN:
            if event.version == self._alloc_version:
                self._live_versioned += 1
            else:  # pragma: no cover - versioned events are pushed fresh
                self._stale_versioned += 1

    @mutates("_alloc_version")
    @invalidates("event_projections")
    def _retire_projections(self) -> None:
        """Supersede every queued COMPLETION/REPLAN projection.

        This is the invalidation point for ``_alloc_version``-dependent
        state: projections carry the version they were computed under, so
        bumping it orphans all of them at once.  The orphans are
        reclassified as stale and compacted out of the heap once they
        dominate it.
        """
        self._alloc_version += 1
        self._stale_versioned += self._live_versioned
        self._live_versioned = 0
        self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop superseded versioned events once they dominate the heap.

        Every reallocation stamps a fresh version and orphans all earlier
        COMPLETION/REPLAN projections; they would otherwise sit in the heap
        until their (possibly far-future) timestamps pop.  Compaction keeps
        the heap proportional to the *live* event population, which keeps
        both push cost and memory flat over arbitrarily long traces.
        """
        if self._stale_versioned < 64 or 2 * self._stale_versioned < len(self._heap):
            return
        version = self._alloc_version
        self._heap = [
            event
            for event in self._heap
            if not (
                (event.kind is EventKind.COMPLETION or event.kind is EventKind.REPLAN)
                and event.version != version
            )
        ]
        heapq.heapify(self._heap)
        self._stale_versioned = 0

    def _handle_arrival(self, event: Event) -> None:
        spec = self._spec_by_id[event.job_id]
        job = Job(spec=spec)
        self.jobs[spec.job_id] = job
        self._submitted += 1
        keep = self.policy.admit(job, self._active_jobs(), self._now)
        if keep:
            job.mark_admitted(self._now)
            self._active[job.job_id] = job
            self._admitted += 1
            self._reallocate()
        else:
            job.mark_dropped(self._now)
            self._record_sample()

    def _handle_completion(self, event: Event) -> None:
        if event.version != self._alloc_version:
            return  # allocation changed since this completion was projected
        job = self.jobs.get(event.job_id)
        if job is None or not job.is_active:
            return
        if job.remaining_iterations > _COMPLETION_EPS:
            raise SimulationError(
                f"completion event fired early for {job.job_id}: "
                f"{job.remaining_iterations} iterations remain"
            )
        job.iterations_done = float(job.spec.max_iterations)
        if self._placement.is_placed(job.job_id):
            self._placement.release(job.job_id)
        job.mark_completed(self._now)
        self._active.pop(job.job_id, None)
        self._evict_rates(job)
        self._reallocate()

    def _handle_node_failure(self, event: Event) -> None:
        node_index = int(event.job_id)
        evicted = self._placement.fail_node(node_index)
        for job_id in evicted:
            job = self.jobs.get(job_id)
            if job is None or not job.is_active:
                continue
            # Unplanned failure: progress since the last checkpoint is lost
            # (planned scaling events checkpoint first; crashes do not).
            job.iterations_done = min(
                job.iterations_done, job.checkpointed_iterations
            )
            job.n_gpus = 0
            job.status = JobStatus.ADMITTED
            job.scale_events += 1
        self.context.usable_gpus -= self.cluster.gpus_per_node
        self._reallocate()

    def _handle_node_repair(self, event: Event) -> None:
        node_index = int(event.job_id)
        self._placement.repair_node(node_index)
        self.context.usable_gpus += self.cluster.gpus_per_node
        if self._active_jobs():
            self._reallocate()

    def _handle_replan(self, event: Event) -> None:
        if event.version != self._alloc_version:
            return  # superseded by a more recent reallocation
        if self._active_jobs():
            self._reallocate()

    # ------------------------------------------------------------ progress
    def _advance_to(self, time: float) -> None:
        if time < self._now - EPS:
            raise SimulationError(
                f"time went backwards: {time} < {self._now}"
            )
        window = time - self._last_advance
        if window > 0:
            soa = self._soa
            if (
                soa is not None
                and sim_vector_enabled()
                and cache_enabled()
                and self.observation_hook is None
                and soa.revision == tables_global_revision()
            ):
                soa.advance(window, time)
                probe.bump("sim_vector_advances")
                probe.bump("sim_vector_rows", len(soa.jobs))
            else:
                if soa is not None:
                    # A scalar advance makes the stacked arrays stale;
                    # drop them until the next reallocation rebuilds.
                    self._rebuild_soa([], [])
                for job in self._active.values():
                    if job.status is JobStatus.RUNNING and job.n_gpus > 0:
                        rate = self._throughput_of(job)
                        job.advance(window, rate, time)
                        if self.observation_hook is not None:
                            self.observation_hook(job, job.n_gpus, rate)
        self._now = max(self._now, time)
        self._last_advance = max(self._last_advance, time)

    def _throughput_of(self, job: Job) -> float:
        """Iterations/sec of a running job under its actual placement."""
        curve = self.context.curve_for(job)
        # Buddy blocks are contiguous aligned index ranges, so the span of
        # the first `size` GPUs is pure arithmetic — no index-set walk.
        block = self._placement.block_of(job.job_id)
        if cache_enabled():
            per_job = self._rate_memo.get(job.job_id)
            if per_job is None:
                per_job = self._rate_memo[job.job_id] = {}
            key = (job.n_gpus, block.offset, curve_revision(curve))
            rate = per_job.get(key)
            if rate is None:
                rate = self._compute_rate(curve, job.n_gpus, block.offset)
                per_job[key] = rate
            return rate
        return self._compute_rate(curve, job.n_gpus, block.offset)

    def _evict_rates(self, job: Job) -> None:
        """Drop a completed job's rate-memo entries.

        Without eviction the memo grows one entry set per job ever run —
        a leak on long traces.  Every inner key embeds the curve revision
        the rate was computed under, so dropping a job's entries can never
        resurrect a stale value; the revision derivation below documents
        that any-revision entries for this job are dead once it completes.
        """
        curve_revision(self.context.curve_for(job))
        self._rate_memo.pop(job.job_id, None)

    def _compute_rate(self, curve, n_gpus: int, offset: int) -> float:
        size = curve.best_size(n_gpus)
        if size == 0:
            return 0.0
        per_node = self.cluster.gpus_per_node
        span = (offset + size - 1) // per_node - offset // per_node + 1
        return curve.throughput(size, Placement(size, span))

    def _speedup_of(self, job: Job) -> float:
        """Speedup over one GPU — the job's Eq. 8 contribution."""
        curve = self.context.curve_for(job)
        one = curve.throughput(1)
        return self._throughput_of(job) / one if one > 0 else 0.0

    # ---------------------------------------------------------- allocation
    def _active_jobs(self) -> list[Job]:
        return list(self._active.values())

    def _reallocate(self) -> None:
        now = self._now
        active = self._active_jobs()
        if not active:
            self._rebuild_soa([], [])
            self._record_sample()
            return
        decisions = self.policy.allocate(active, now)
        mark = probe.tick()
        self._validate_decisions(decisions, active)
        # Every projection pushed before this point is now superseded.
        self._retire_projections()
        version = self._alloc_version

        active_by_id = {job.job_id: job for job in active}
        changed: set[str] = set()

        def charge(job: Job, old: int, new: int) -> None:
            model = self.throughput.curve(
                job.spec.model_name, job.spec.global_batch_size
            ).model
            overhead = self.executor.scaling_overhead(model, old, new)
            if overhead > 0:
                job.stall_until = max(job.stall_until, now) + overhead
            job.scale_events += 1
            # Every planned scaling event checkpoints before the move
            # (Section 5), so a later crash loses at most the progress
            # made since this instant.
            job.checkpointed_iterations = job.iterations_done

        # Releases and shrinks first so capacity is free for the growers.
        ordered = sorted(
            active, key=lambda j: decisions.get(j.job_id, 0) - j.n_gpus
        )
        for job in ordered:
            target = decisions.get(job.job_id, 0)
            current = job.n_gpus
            if target == current:
                continue
            migrated: list[str] = []
            try:
                if target == 0:
                    self._placement.release(job.job_id)
                    job.status = JobStatus.ADMITTED
                elif current == 0:
                    _, migrated = self._placement.place(job.job_id, target)
                    job.status = JobStatus.RUNNING
                else:
                    _, migrated = self._placement.resize(job.job_id, target)
            except PlacementError:
                # Failed nodes can fragment the space so badly that even
                # migration cannot carve the block; the job keeps (or stays
                # at) its current allocation until the next event.
                continue
            charge(job, current, target)
            job.n_gpus = target
            changed.add(job.job_id)
            for victim_id in migrated:
                victim = active_by_id.get(victim_id)
                if victim is not None and victim_id not in changed:
                    model = self.throughput.curve(
                        victim.spec.model_name, victim.spec.global_batch_size
                    ).model
                    overhead = self.executor.migration_overhead(
                        model, victim.n_gpus
                    )
                    if overhead > 0:
                        victim.stall_until = max(victim.stall_until, now) + overhead
                    victim.scale_events += 1
                    changed.add(victim_id)

        # Project completions under the new allocation, gathering the
        # running rows (with the rates just derived) for the vector
        # advance frame in the same pass.
        soa_jobs: list[Job] = []
        soa_rates: list[float] = []
        for job in active:
            if job.n_gpus <= 0:
                continue
            throughput = self._throughput_of(job)
            if job.status is JobStatus.RUNNING:
                soa_jobs.append(job)
                soa_rates.append(throughput)
            if throughput <= 0:
                continue
            finish = max(now, job.stall_until) + (
                job.remaining_iterations / throughput
            )
            self._push(
                Event(finish, EventKind.COMPLETION, next(self._seq), job.job_id, version)
            )
        self._rebuild_soa(soa_jobs, soa_rates)
        self._push(
            Event(now + self.slot_seconds, EventKind.REPLAN, next(self._seq), "", version)
        )
        self._record_sample()
        # Everything after the policy call — validation, placement moves,
        # overhead charging, completion projection — is the engine's own
        # bookkeeping share of the event.
        probe.lap("engine", mark)

    @mutates("_soa")
    @invalidates("sim_soa")
    def _rebuild_soa(self, jobs: list[Job], rates: list[float]) -> None:
        """Replace (or clear) the stacked progress frame.

        This is the single mutation point for ``_soa``: reallocation calls
        it with the fresh running set, the empty-active path and the scalar
        advance fallback call it with no rows to drop a stale frame.  The
        frame is withheld entirely when the vector hatch is off or an
        observation hook needs per-job callbacks, so those runs never pay
        the array gather.
        """
        if (
            not jobs
            or self.observation_hook is not None
            or not sim_vector_enabled()
            or not cache_enabled()
        ):
            self._soa = None
            return
        self._soa = _ProgressSoA(jobs, rates, tables_global_revision())

    def _validate_decisions(
        self, decisions: dict[str, int], active: list[Job]
    ) -> None:
        active_ids = {job.job_id for job in active}
        total = 0
        for job_id, count in decisions.items():
            if job_id not in active_ids:
                raise SchedulingError(
                    f"policy {self.policy.name!r} allocated to inactive job "
                    f"{job_id!r}"
                )
            if count < 0:
                raise SchedulingError(
                    f"policy {self.policy.name!r} allocated {count} GPUs"
                )
            if count and not is_power_of_two(count):
                # Buddy placement only ever hosts power-of-two blocks; an
                # odd count indicates a policy bug, not a soft preference.
                raise SchedulingError(
                    f"policy {self.policy.name!r} allocated a non-power-of-two "
                    f"count {count} to {job_id!r}"
                )
            total += count
        if total > self.context.usable_gpus:
            raise SchedulingError(
                f"policy {self.policy.name!r} allocated {total} GPUs with "
                f"{self.context.usable_gpus} usable"
            )

    # ------------------------------------------------------------- samples
    def _record_sample(self) -> None:
        if self.timeline is None:
            return  # no timeline: no sample, and no speedup lookups at all
        running = [
            job
            for job in self._active.values()
            if job.status is JobStatus.RUNNING and job.n_gpus > 0
        ]
        efficiency = (
            sum(self._speedup_of(job) for job in running)
            if self._record_efficiency
            else 0.0
        )
        self.timeline.record(
            TimelineSample(
                time=self._now,
                gpus_in_use=sum(job.n_gpus for job in running),
                cluster_efficiency=efficiency / self.cluster.total_gpus,
                running_jobs=len(running),
                submitted=self._submitted,
                admitted=self._admitted,
                allocations={job.job_id: job.n_gpus for job in running},
            )
        )

    def _check_no_starvation(self) -> None:
        stuck = [job.job_id for job in self.jobs.values() if job.is_active]
        if stuck:
            raise SimulationError(
                f"simulation ended with active jobs still unfinished: {stuck}"
            )
