"""Node-failure injection (paper Section 4.4, "Node failures").

Real clusters lose servers at random; the paper sketches the extension of
reserving capacity against the failure probability.  This module provides
(i) a generator of per-node failure/repair schedules from MTBF/MTTR
exponentials, and (ii) the :class:`FailureSchedule` the engine replays.
ElasticFlow's corresponding knob is ``failure_reserve_gpus``: admission
plans against a reduced capacity so a failure does not instantly break
admitted guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FailureWindow", "FailureSchedule", "NodeFailureModel"]


@dataclass(frozen=True, order=True)
class FailureWindow:
    """One outage: a node is down during [start, end)."""

    start: float
    end: float
    node_index: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"invalid failure window [{self.start}, {self.end})"
            )
        if self.node_index < 0:
            raise ConfigurationError(f"invalid node index {self.node_index}")


@dataclass(frozen=True)
class FailureSchedule:
    """A replayable set of outages.

    Windows for the same node must not overlap (a node cannot fail while
    already failed).
    """

    windows: tuple[FailureWindow, ...]

    def __post_init__(self) -> None:
        by_node: dict[int, list[FailureWindow]] = {}
        for window in self.windows:
            by_node.setdefault(window.node_index, []).append(window)
        for node, node_windows in by_node.items():
            ordered = sorted(node_windows)
            for left, right in zip(ordered, ordered[1:]):
                if right.start < left.end:
                    raise ConfigurationError(
                        f"node {node} has overlapping outages {left} and {right}"
                    )

    def __len__(self) -> int:
        return len(self.windows)

    def within(self, horizon: float) -> "FailureSchedule":
        """Only the outages that begin before ``horizon``."""
        return FailureSchedule(
            windows=tuple(w for w in self.windows if w.start < horizon)
        )

    @staticmethod
    def none() -> "FailureSchedule":
        return FailureSchedule(windows=())


class NodeFailureModel:
    """Exponential failure/repair process per node.

    Args:
        mtbf_hours: Mean time between failures of one node.
        mttr_hours: Mean time to repair.
    """

    def __init__(self, mtbf_hours: float = 720.0, mttr_hours: float = 4.0) -> None:
        if mtbf_hours <= 0 or mttr_hours <= 0:
            raise ConfigurationError("mtbf_hours and mttr_hours must be > 0")
        self.mtbf_s = mtbf_hours * 3600.0
        self.mttr_s = mttr_hours * 3600.0

    def sample(
        self,
        n_nodes: int,
        horizon_s: float,
        seed: int = 0,
        *,
        rng: np.random.Generator | None = None,
    ) -> FailureSchedule:
        """Draw a failure schedule for ``n_nodes`` over ``horizon_s``.

        An explicit ``rng`` takes precedence over ``seed`` so callers can
        thread one generator through a whole experiment.
        """
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if horizon_s <= 0:
            raise ConfigurationError(f"horizon_s must be > 0, got {horizon_s}")
        if rng is None:
            rng = np.random.default_rng(seed)
        windows: list[FailureWindow] = []
        for node in range(n_nodes):
            clock = float(rng.exponential(self.mtbf_s))
            while clock < horizon_s:
                repair = clock + float(rng.exponential(self.mttr_s))
                windows.append(
                    FailureWindow(start=clock, end=repair, node_index=node)
                )
                clock = repair + float(rng.exponential(self.mtbf_s))
        return FailureSchedule(windows=tuple(sorted(windows)))
