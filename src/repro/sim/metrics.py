"""Evaluation metrics (paper Section 6.1).

The headline metric is the *deadline satisfactory ratio*: the fraction of
submitted SLO jobs that finish before their deadline (dropped jobs count
against it).  *Cluster efficiency* (Eq. 8) measures how well the allocated
GPUs are used: a job running on ``n`` GPUs contributes its speedup over one
GPU, so CE is the mean per-GPU normalised throughput across the cluster.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

from repro.core.job import Job, JobStatus
from repro.errors import ConfigurationError
from repro.sim.recorder import Timeline

__all__ = ["JobOutcome", "SimulationResult"]


@dataclass(frozen=True)
class JobOutcome:
    """Final state of one submitted job."""

    job_id: str
    model_name: str
    submit_time: float
    deadline: float
    best_effort: bool
    status: JobStatus
    admitted: bool
    completion_time: float | None
    scale_events: int

    @classmethod
    def from_job(cls, job: Job) -> "JobOutcome":
        return cls(
            job_id=job.job_id,
            model_name=job.spec.model_name,
            submit_time=job.spec.submit_time,
            deadline=job.spec.effective_deadline,
            best_effort=job.spec.best_effort,
            status=job.status,
            admitted=job.admission_time is not None,
            completion_time=job.completion_time,
            scale_events=job.scale_events,
        )

    @property
    def met_deadline(self) -> bool:
        if self.completion_time is None:
            return False
        return self.completion_time <= self.deadline + 1e-6

    @property
    def jct(self) -> float | None:
        """Job completion time (submission to completion)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    policy_name: str
    outcomes: list[JobOutcome]
    timeline: Timeline | None = None
    total_gpus: int = 0
    events_processed: int = 0
    _by_id: dict[str, JobOutcome] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {outcome.job_id: outcome for outcome in self.outcomes}
        if len(self._by_id) != len(self.outcomes):
            raise ConfigurationError("duplicate job ids in outcomes")

    # ------------------------------------------------------------ accessors
    def outcome_of(self, job_id: str) -> JobOutcome:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise ConfigurationError(f"unknown job id {job_id!r}") from None

    @property
    def slo_outcomes(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.best_effort]

    @property
    def best_effort_outcomes(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.best_effort]

    # -------------------------------------------------------------- metrics
    @property
    def deadline_satisfactory_ratio(self) -> float:
        """Fraction of submitted SLO jobs finishing on time (the headline)."""
        slo = self.slo_outcomes
        if not slo:
            return math.nan
        return sum(o.met_deadline for o in slo) / len(slo)

    @property
    def deadlines_met(self) -> int:
        return sum(o.met_deadline for o in self.slo_outcomes)

    @property
    def admitted_count(self) -> int:
        return sum(o.admitted for o in self.outcomes)

    @property
    def dropped_count(self) -> int:
        return sum(o.status is JobStatus.DROPPED for o in self.outcomes)

    @property
    def completed_count(self) -> int:
        return sum(o.status is JobStatus.COMPLETED for o in self.outcomes)

    @property
    def makespan(self) -> float:
        """Time from first submission to last completion."""
        completions = [o.completion_time for o in self.outcomes if o.completion_time]
        if not completions:
            return 0.0
        start = min(o.submit_time for o in self.outcomes)
        return max(completions) - start

    def average_jct(self, *, best_effort_only: bool = False) -> float:
        """Mean completion latency over finished jobs."""
        pool = self.best_effort_outcomes if best_effort_only else self.outcomes
        jcts = [o.jct for o in pool if o.jct is not None]
        if not jcts:
            return math.nan
        return statistics.fmean(jcts)

    def summary(self) -> dict[str, float]:
        """Compact metric dictionary used by the experiment reports."""
        return {
            "jobs": float(len(self.outcomes)),
            "dsr": self.deadline_satisfactory_ratio,
            "deadlines_met": float(self.deadlines_met),
            "admitted": float(self.admitted_count),
            "dropped": float(self.dropped_count),
            "completed": float(self.completed_count),
            "makespan_h": self.makespan / 3600.0,
            "avg_jct_h": self.average_jct() / 3600.0,
        }
