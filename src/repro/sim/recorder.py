"""Timeline recording for the time-series figures (Figs 7 and 10).

The recorder samples cluster state at every scheduling event: how many GPUs
each job holds, the instantaneous cluster efficiency (Eq. 8), and the
cumulative submitted/admitted counters.  Step-wise integration over the
samples yields the time-weighted averages the figures plot.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.numeric import feq

__all__ = ["TimelineSample", "Timeline"]


@dataclass(frozen=True)
class TimelineSample:
    """Cluster state at one instant (valid until the next sample).

    Attributes:
        time: Sample timestamp.
        gpus_in_use: Total GPUs held by running jobs.
        cluster_efficiency: Eq. 8 value at this instant.
        running_jobs: Number of jobs holding GPUs.
        submitted: Cumulative submitted job count.
        admitted: Cumulative admitted job count.
        allocations: GPUs per running job id.
    """

    time: float
    gpus_in_use: int
    cluster_efficiency: float
    running_jobs: int
    submitted: int
    admitted: int
    allocations: dict[str, int] = field(default_factory=dict)


class Timeline:
    """Append-only sequence of :class:`TimelineSample`.

    Samples must arrive in non-decreasing time order; a new sample at an
    existing timestamp supersedes the older one (scheduling events at the
    same instant collapse to their final state).
    """

    def __init__(self) -> None:
        self._samples: list[TimelineSample] = []

    def record(self, sample: TimelineSample) -> None:
        if self._samples and sample.time < self._samples[-1].time:
            raise ConfigurationError(
                f"samples must be time-ordered: {sample.time} < "
                f"{self._samples[-1].time}"
            )
        if self._samples and feq(sample.time, self._samples[-1].time):
            self._samples[-1] = sample
        else:
            self._samples.append(sample)

    @property
    def samples(self) -> list[TimelineSample]:
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def end_time(self) -> float:
        if not self._samples:
            return 0.0
        return self._samples[-1].time

    def sample_at(self, time: float) -> TimelineSample:
        """The sample in effect at an arbitrary instant."""
        if not self._samples:
            raise ConfigurationError("timeline is empty")
        times = [s.time for s in self._samples]
        index = bisect.bisect_right(times, time) - 1
        if index < 0:
            raise ConfigurationError(
                f"time {time} precedes the first sample {times[0]}"
            )
        return self._samples[index]

    def series(
        self, attribute: str, *, resolution_s: float | None = None
    ) -> tuple[list[float], list[float]]:
        """Extract an attribute as (times, values), optionally resampled.

        With ``resolution_s`` the step function is sampled on a regular grid
        — convenient for plotting and for comparing runs of different event
        densities.
        """
        if not self._samples:
            return [], []
        if resolution_s is None:
            times = [s.time for s in self._samples]
            values = [float(getattr(s, attribute)) for s in self._samples]
            return times, values
        if resolution_s <= 0:
            raise ConfigurationError(
                f"resolution_s must be > 0, got {resolution_s}"
            )
        start, end = self._samples[0].time, self._samples[-1].time
        times, values = [], []
        t = start
        while t <= end:
            times.append(t)
            values.append(float(getattr(self.sample_at(t), attribute)))
            t += resolution_s
        return times, values

    def time_weighted_mean(
        self, attribute: str, *, start: float | None = None, end: float | None = None
    ) -> float:
        """Integral mean of an attribute over [start, end]."""
        if not self._samples:
            raise ConfigurationError("timeline is empty")
        start = self._samples[0].time if start is None else start
        end = self._samples[-1].time if end is None else end
        if end <= start:
            raise ConfigurationError(f"invalid window [{start}, {end}]")
        total = 0.0
        for current, nxt in zip(self._samples, self._samples[1:] + [None]):
            seg_start = max(current.time, start)
            seg_end = end if nxt is None else min(nxt.time, end)
            if seg_end > seg_start:
                total += float(getattr(current, attribute)) * (seg_end - seg_start)
        return total / (end - start)
