"""The contract between the simulator engine and scheduler policies.

Every scheduler in this repository — ElasticFlow itself and all six
baselines — implements :class:`SchedulerPolicy`.  The engine owns job
state, placement, progress accounting, and overheads; a policy only decides
(i) whether an arriving job is kept, and (ii) how many GPUs each active job
holds until the next scheduling event.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.topology import ClusterSpec
from repro.errors import ConfigurationError
from repro.profiles.throughput import ScalingCurve, ThroughputModel

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.core.job import Job

__all__ = ["PolicyContext", "SchedulerPolicy"]


@dataclass
class PolicyContext:
    """Static facts a policy may consult when making decisions.

    Attributes:
        cluster: Shape of the simulated cluster.
        throughput: Source of scaling curves (identical to what the engine
            uses to advance job progress, mirroring the paper's pre-run
            profiling step).
        slot_seconds: Planning-slot width, which is also the periodic
            re-scheduling interval of the engine.
    """

    cluster: ClusterSpec
    throughput: ThroughputModel
    slot_seconds: float = 300.0
    usable_gpus: int = 0  # maintained by the engine; shrinks on node failure

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ConfigurationError(
                f"slot_seconds must be > 0, got {self.slot_seconds}"
            )
        if self.usable_gpus <= 0:
            self.usable_gpus = self.cluster.total_gpus

    @property
    def total_gpus(self) -> int:
        return self.cluster.total_gpus

    def curve_for(self, job: Job) -> ScalingCurve:
        """The job's scaling curve under compact placement."""
        return self.throughput.curve(
            job.spec.model_name, job.spec.global_batch_size
        )


class SchedulerPolicy(abc.ABC):
    """Base class for all schedulers driven by the simulator."""

    #: Human-readable policy name used in reports and figures.
    name: str = "unnamed"

    def __init__(self) -> None:
        self._context: PolicyContext | None = None

    @property
    def context(self) -> PolicyContext:
        if self._context is None:
            raise ConfigurationError(
                f"policy {self.name!r} is not bound to a simulator"
            )
        return self._context

    def bind(self, context: PolicyContext) -> None:
        """Attach the policy to a cluster; called once by the engine."""
        self._context = context

    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Decide whether to keep an arriving job.

        Returning ``False`` drops the job permanently (only deadline-aware
        admission-controlled policies ever do).  The default keeps
        everything, matching the non-admission baselines.
        """
        return True

    @abc.abstractmethod
    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """GPU allocation for every active job until the next event.

        Args:
            active: Jobs that are admitted or running, in submission order.
            now: Current simulation time.

        Returns:
            Mapping of job id to GPU count for the next interval.  Jobs
            omitted from the mapping are treated as suspended (0 GPUs).
            The counts must be powers of two and sum to at most the cluster
            size; the engine validates this.
        """
