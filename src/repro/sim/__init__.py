"""Discrete-event GPU-cluster simulator.

The paper evaluates ElasticFlow both on a 128-GPU testbed and in a
simulator driven by profiled throughputs; the authors validate the
simulator at <= 3 % error against the testbed (Section 6.1).  This package
is that simulator: it replays job-level events (arrival, elastic scaling,
completion), charges scaling/migration overheads through an executor model,
and records the metrics the evaluation reports (deadline satisfactory
ratio, cluster efficiency, JCT, makespan, allocation timelines).
"""

from repro.sim.interface import PolicyContext, SchedulerPolicy
from repro.sim.executor import ElasticExecutor
from repro.sim.events import Event, EventKind
from repro.sim.failures import FailureSchedule, FailureWindow, NodeFailureModel
from repro.sim.metrics import JobOutcome, SimulationResult
from repro.sim.recorder import Timeline, TimelineSample
from repro.sim.engine import Simulator
from repro.sim.validate import JobValidation, ValidationReport, validate_result

__all__ = [
    "PolicyContext",
    "SchedulerPolicy",
    "ElasticExecutor",
    "Event",
    "EventKind",
    "FailureSchedule",
    "FailureWindow",
    "NodeFailureModel",
    "JobOutcome",
    "SimulationResult",
    "Timeline",
    "TimelineSample",
    "Simulator",
    "JobValidation",
    "ValidationReport",
    "validate_result",
]
