"""Event types for the discrete-event engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Job-level events the simulator processes.

    The integer values double as tie-break priorities for events that share
    a timestamp: completions are applied before arrivals so a finishing
    job's GPUs are visible to the admission decision of a simultaneous
    arrival, and periodic replans run last.
    """

    COMPLETION = 0
    ARRIVAL = 1
    REPLAN = 2
    NODE_FAILURE = 3
    NODE_REPAIR = 4


@dataclass(frozen=True, order=True)
class Event:
    """One entry of the simulator's event queue.

    Ordering is by time, then kind priority, then insertion sequence so the
    simulation is fully deterministic.

    Attributes:
        time: Absolute simulation time of the event.
        kind: What happens.
        seq: Monotonic insertion counter (tie-break).
        job_id: Affected job (empty for REPLAN events).
        version: Allocation version stamped on COMPLETION events; the event
            is ignored if the allocation changed since it was scheduled.
    """

    time: float
    kind: EventKind
    seq: int
    job_id: str = field(default="", compare=False)
    version: int = field(default=0, compare=False)
