"""Shared numeric-hygiene helpers.

Two families of bugs kept re-appearing in scheduler code and are now policed
by the static analyser (``python -m repro.analysis``, rules NH001/NH002):

- **Float equality.**  Times, deadlines, throughputs, and slot weights are
  all floats produced by arithmetic; comparing them with ``==``/``!=``
  silently depends on rounding.  :func:`feq`/:func:`fne` are the sanctioned
  epsilon comparisons, and :data:`EPS` is the single shared tolerance the
  planning algorithms use for feasibility slack.
- **Hand-rolled power-of-two bit tricks.**  GPU counts in this system are
  powers of two everywhere (buddy allocation), and the ``value & (value-1)``
  / ``1 << bit_length()-1`` idioms were independently re-implemented in six
  modules.  They live here once, with names.

This module must stay dependency-free (stdlib only): everything from
``repro.cluster.buddy`` to ``repro.traces.schema`` imports it.
"""

from __future__ import annotations

__all__ = [
    "EPS",
    "feq",
    "fne",
    "is_power_of_two",
    "floor_power_of_two",
    "next_power_of_two",
]

#: Absolute tolerance used by the planning algorithms for feasibility slack
#: (progress requirements, deadline boundaries).  One shared constant so a
#: plan deemed feasible by admission control is never re-judged infeasible
#: by allocation over a rounding ulp.
EPS: float = 1e-9


def feq(a: float, b: float, *, eps: float = EPS) -> bool:
    """Whether two floats are equal to within ``eps`` (absolute)."""
    return abs(a - b) <= eps


def fne(a: float, b: float, *, eps: float = EPS) -> bool:
    """Whether two floats differ by more than ``eps`` (absolute)."""
    return abs(a - b) > eps


def is_power_of_two(value: int) -> bool:
    """Whether ``value`` is a positive power of two."""
    return value >= 1 and value & (value - 1) == 0


def floor_power_of_two(value: int) -> int:
    """Largest power of two not exceeding ``value`` (0 for ``value < 1``)."""
    if value < 1:
        return 0
    return 1 << (value.bit_length() - 1)


def next_power_of_two(value: int) -> int:
    """Smallest power of two not below ``value`` (1 for ``value < 1``)."""
    if value < 1:
        return 1
    return 1 << (value - 1).bit_length()
