"""Command-line interface for the ElasticFlow reproduction.

Subcommands::

    repro list-models                       # Table 1 pool
    repro scaling-curve resnet50 256        # Fig 2a-style curve
    repro simulate --policy elasticflow ... # one workload, one scheduler
    repro compare --policies a,b,c ...      # one workload, many schedulers
    repro experiment fig6a                  # regenerate a paper artifact
    repro make-trace --out trace.json ...   # synthesise a workload trace
    repro cache [--wipe]                    # inspect/clear the run cache

Every command is deterministic given ``--seed`` — including under
``--workers auto``, which only changes wall-clock time, never a number.
``--cache`` persists completed runs under ``.repro-cache/`` (or
``$REPRO_CACHE_DIR``) keyed by a content fingerprint of the full run
configuration, so repeated and overlapping experiments are free.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baselines.registry import POLICY_NAMES
from repro.errors import ReproError
from repro.experiments.report import format_series, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The `repro` command-line parser (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ElasticFlow (ASPLOS 2023) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-models", help="show the Table 1 model pool")

    curve = commands.add_parser("scaling-curve", help="print a scaling curve")
    curve.add_argument("model")
    curve.add_argument("batch", type=int)
    curve.add_argument("--max-gpus", type=int, default=64)

    simulate = commands.add_parser("simulate", help="run one scheduler on a workload")
    simulate.add_argument("--policy", default="elasticflow", choices=POLICY_NAMES)
    _workload_arguments(simulate)
    simulate.add_argument("--json", action="store_true", help="emit JSON")

    compare = commands.add_parser("compare", help="run several schedulers")
    compare.add_argument(
        "--policies",
        default="elasticflow,edf,gandiva,tiresias,themis,chronus",
        help="comma-separated policy names",
    )
    _workload_arguments(compare)

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "artifact",
        choices=[
            "table1", "fig2a", "fig2b", "fig3", "fig4", "fig6a", "fig6b",
            "fig8a", "fig9", "fig12a", "fig12b",
        ],
    )
    experiment.add_argument("--seed", type=int, default=0)
    _parallel_arguments(experiment)

    cache = commands.add_parser("cache", help="inspect or wipe the run cache")
    cache.add_argument("--wipe", action="store_true", help="delete every entry")

    stats = commands.add_parser("trace-stats", help="summarise a trace file")
    stats.add_argument("path", help=".json or .csv trace file")

    trace = commands.add_parser("make-trace", help="synthesise a workload trace")
    trace.add_argument("--out", required=True, help=".json or .csv path")
    trace.add_argument("--cluster-gpus", type=int, default=128)
    trace.add_argument("--jobs", type=int, default=200)
    trace.add_argument("--load", type=float, default=1.0)
    trace.add_argument("--seed", type=int, default=0)

    return parser


def _workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gpus", type=int, default=64)
    parser.add_argument("--jobs", type=int, default=60)
    parser.add_argument("--load", type=float, default=1.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--slot-seconds", type=float, default=600.0)
    parser.add_argument(
        "--no-overheads", action="store_true", help="disable scaling overheads"
    )
    _parallel_arguments(parser)


def _parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        default="1",
        help="fan-out width: a positive integer or 'auto' (one per core)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="persist/reuse results in .repro-cache (or $REPRO_CACHE_DIR)",
    )


def _cmd_list_models() -> int:
    from repro.experiments.table1 import table1_models

    rows = [
        (r.task, r.dataset, r.model, ",".join(map(str, r.batch_sizes)))
        for r in table1_models()
    ]
    print(format_table(["Task", "Dataset", "Model", "Batch sizes"], rows))
    return 0


def _cmd_scaling_curve(args: argparse.Namespace) -> int:
    from repro.profiles import ThroughputModel

    curve = ThroughputModel().curve(args.model, args.batch)
    sizes = curve.allowed_sizes(args.max_gpus)
    print(
        format_series(
            "speedup", sizes, [curve.speedup(n) for n in sizes], x_label="gpus"
        )
    )
    print(
        format_series(
            "iters/s", sizes, [curve.throughput(n) for n in sizes], x_label="gpus"
        )
    )
    print(f"peak-throughput size: {curve.max_useful_gpus(args.max_gpus)} GPUs")
    return 0


def _config_from(args: argparse.Namespace):
    from repro.experiments.harness import ExperimentConfig

    return ExperimentConfig(
        seed=args.seed,
        slot_seconds=args.slot_seconds,
        overheads_enabled=not args.no_overheads,
    )


def _cache_from(args: argparse.Namespace):
    from repro.parallel.cache import RunCache

    return RunCache() if getattr(args, "cache", False) else None


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_policies, testbed_workload_spec
    from repro.sim.serialize import sanitize_for_json

    config = _config_from(args)
    cluster, workload = testbed_workload_spec(
        config, cluster_gpus=args.gpus, n_jobs=args.jobs, target_load=args.load
    )
    result = run_policies(
        [args.policy],
        cluster,
        None,
        config,
        workers=args.workers,
        cache=_cache_from(args),
        workload=workload,
    )[args.policy]
    if args.json:
        print(json.dumps(sanitize_for_json(result.summary()), indent=2))
        return 0
    rows = [(key, value) for key, value in result.summary().items()]
    print(format_table(["Metric", "Value"], rows, title=f"policy: {args.policy}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_policies, testbed_workload_spec

    names = [name.strip() for name in args.policies.split(",") if name.strip()]
    config = _config_from(args)
    cluster, workload = testbed_workload_spec(
        config, cluster_gpus=args.gpus, n_jobs=args.jobs, target_load=args.load
    )
    results = run_policies(
        names,
        cluster,
        None,
        config,
        workers=args.workers,
        cache=_cache_from(args),
        workload=workload,
    )
    rows = [
        (
            name,
            result.deadline_satisfactory_ratio,
            result.deadlines_met,
            result.dropped_count,
        )
        for name, result in sorted(
            results.items(), key=lambda kv: -kv[1].deadline_satisfactory_ratio
        )
    ]
    print(
        format_table(
            ["Policy", "DSR", "Met", "Dropped"],
            rows,
            title=f"{workload.trace_config.n_jobs} jobs on {cluster.total_gpus} GPUs",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as experiments
    from repro.experiments.harness import ExperimentConfig

    config = ExperimentConfig(seed=args.seed)
    artifact = args.artifact
    if artifact == "table1":
        return _cmd_list_models()
    if artifact in ("fig2a", "fig2b"):
        series = (
            experiments.fig2a_scaling_curves()
            if artifact == "fig2a"
            else experiments.fig2b_placement_throughput()
        )
        for line in series:
            print(format_series(line.model, line.xs, line.speedups, x_label="x"))
        return 0
    if artifact == "fig3":
        outcome = experiments.fig3_edf_example()
        print(f"EDF: A at {outcome['edf'].finish_a}, B at {outcome['edf'].finish_b} "
              f"-> {outcome['edf'].deadlines_met}/2 deadlines")
        print(f"one worker each -> {outcome['one_worker_each'].deadlines_met}/2 deadlines")
        print(f"ElasticFlow admits both: {outcome['elasticflow_admits_both']}")
        return 0
    if artifact == "fig4":
        result = experiments.fig4_admission_example()
        print(f"minimum satisfactory share plan: {result.plan}")
        print(f"GPU time alone/contended: {result.gpu_time_alone}/{result.gpu_time_contended}")
        return 0
    if artifact in ("fig6a", "fig6b", "fig8a"):
        if artifact == "fig8a":
            run = experiments.fig8a_with_pollux(
                config=config, workers=args.workers, cache=_cache_from(args)
            )
        else:
            scale = "small" if artifact == "fig6a" else "large"
            run = experiments.fig6_deadline_satisfaction(
                scale=scale,
                config=config,
                workers=args.workers,
                cache=_cache_from(args),
            )
        print(
            format_table(
                ["Policy", "DSR", "Met", "Dropped"], run.rows(), title=run.label
            )
        )
        return 0
    if artifact == "fig9":
        rows = experiments.fig9_sources_of_improvement(
            config=config, workers=args.workers, cache=_cache_from(args)
        )
        names = list(rows[0].ratios)
        print(
            format_table(
                ["GPUs"] + names,
                [[r.cluster_gpus] + [r.ratios[n] for n in names] for r in rows],
            )
        )
        return 0
    if artifact == "fig12a":
        rows = experiments.fig12a_profiling_overheads()
        print(
            format_table(
                ["Model", "Overhead (min)"],
                [(r.model, r.overhead_minutes) for r in rows],
            )
        )
        return 0
    if artifact == "fig12b":
        rows = experiments.fig12b_scaling_overheads()
        labels = sorted(rows[0].seconds_by_case)
        print(
            format_table(
                ["Model"] + labels,
                [[r.model] + [r.seconds_by_case[l] for l in labels] for r in rows],
            )
        )
        return 0
    raise ReproError(f"unhandled artifact {artifact!r}")  # pragma: no cover


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.parallel.cache import RunCache

    cache = RunCache()
    entries = cache.entries()
    if args.wipe:
        removed = cache.wipe()
        print(f"removed {removed} cached runs from {cache.root}")
        return 0
    print(
        format_table(
            ["Cache", "Entries", "Bytes"],
            [(str(cache.root), len(entries), cache.size_bytes())],
        )
    )
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    from repro.traces import analyze_trace, read_trace_csv, trace_from_json

    if args.path.endswith(".csv"):
        trace = read_trace_csv(args.path)
    else:
        with open(args.path) as handle:
            trace = trace_from_json(handle.read())
    stats = analyze_trace(trace)
    rows = [
        ("jobs", stats.n_jobs),
        ("cluster GPUs", stats.cluster_gpus),
        ("span (h)", stats.span_hours),
        ("offered work (GPU-h)", stats.total_gpu_hours),
        ("mean load", stats.mean_load),
        ("peak load", stats.peak_load),
        ("duration p50 (h)", stats.duration_p50_h),
        ("duration p90 (h)", stats.duration_p90_h),
        ("duration max (h)", stats.duration_max_h),
        ("1-GPU job share", stats.single_gpu_fraction),
    ]
    print(format_table(["Statistic", "Value"], rows, title=stats.name))
    print()
    print(
        format_table(
            ["GPUs", "Share"],
            [(size, share) for size, share in stats.size_histogram.items()],
            title="Requested-size distribution",
        )
    )
    return 0


def _cmd_make_trace(args: argparse.Namespace) -> int:
    from repro.traces import (
        ClusterTraceConfig,
        generate_trace,
        trace_to_json,
        write_trace_csv,
    )

    config = ClusterTraceConfig(
        name=f"cli-{args.cluster_gpus}g",
        cluster_gpus=args.cluster_gpus,
        n_jobs=args.jobs,
        target_load=args.load,
    )
    trace = generate_trace(config, seed=args.seed)
    if args.out.endswith(".csv"):
        write_trace_csv(trace, args.out)
    else:
        with open(args.out, "w") as handle:
            handle.write(trace_to_json(trace))
    print(
        f"wrote {len(trace)} jobs (load {trace.load_factor():.2f}) to {args.out}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list-models":
            return _cmd_list_models()
        if args.command == "scaling-curve":
            return _cmd_scaling_curve(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "trace-stats":
            return _cmd_trace_stats(args)
        if args.command == "make-trace":
            return _cmd_make_trace(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
