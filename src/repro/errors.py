"""Exception hierarchy for the ElasticFlow reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
scheduling conditions.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnknownModelError",
    "PlacementError",
    "AllocationError",
    "SchedulingError",
    "SimulationError",
    "TraceError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with invalid or inconsistent parameters."""


class UnknownModelError(ConfigurationError, KeyError):
    """A DNN model name is not present in the model zoo."""


class PlacementError(ReproError):
    """The placement layer could not satisfy a request it should satisfy."""


class AllocationError(ReproError):
    """The buddy allocator was asked for an impossible block."""


class SchedulingError(ReproError):
    """A scheduler reached an internally inconsistent state."""


class SimulationError(ReproError):
    """The discrete-event engine detected an invalid event sequence."""


class TraceError(ReproError, ValueError):
    """A workload trace is malformed or violates its schema."""


class AnalysisError(ReproError):
    """The static analyser was misconfigured or hit an unreadable input.

    Raised for usage errors (unknown rule ids, unparseable files, a
    corrupt baseline) — never for findings, which are data, not
    exceptions.
    """
