"""Synthetic production-cluster trace generation.

The ten configurations mirror the spread the paper quotes for its private
traces (Section 6.1): cluster sizes from 164 to 2783 GPUs and 260 to 15802
jobs over two months.  Cluster sizes are rounded to powers of two so the
buddy allocator's no-fragmentation guarantee applies.  A ``scale`` factor
shrinks a configuration proportionally (same offered load, fewer GPUs and
jobs) so the full ten-trace sweep stays tractable in CI while the
full-scale traces remain available.

Generation recipe per cluster:

- requested GPU counts are drawn from a heavily 1-GPU-skewed power-of-two
  distribution (as observed in the Philly analysis the paper cites);
- durations are log-normal — minutes-to-days with a heavy tail;
- arrivals are a Poisson process stretched so the trace hits the
  configuration's target offered load, with optional bursts (Fig 7 shows a
  submission burst around hour 13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import TraceError
from repro.numeric import floor_power_of_two, is_power_of_two
from repro.traces.schema import Trace, TraceJob

__all__ = ["ClusterTraceConfig", "PRODUCTION_CLUSTERS", "generate_trace"]


#: Default requested-size distribution (fraction of jobs per power of two).
_DEFAULT_GPU_WEIGHTS: dict[int, float] = {
    1: 0.52,
    2: 0.16,
    4: 0.12,
    8: 0.12,
    16: 0.05,
    32: 0.03,
}


@dataclass(frozen=True)
class ClusterTraceConfig:
    """Knobs for one synthetic cluster trace.

    Attributes:
        name: Trace name.
        cluster_gpus: Power-of-two cluster size.
        n_jobs: Number of jobs to generate.
        target_load: Offered load (requested GPU-time / cluster GPU-time).
        duration_median_s: Median job duration.
        duration_sigma: Log-normal sigma of durations.
        gpu_weights: Requested-size distribution; keys must be powers of two.
        duration_max_s: Upper clip for durations (keeps simulation
            horizons tractable; the paper fast-forwards long jobs instead).
        burst_fraction: Fraction of jobs arriving inside burst windows.
        n_bursts: Number of burst windows spread over the trace.
    """

    name: str
    cluster_gpus: int
    n_jobs: int
    target_load: float = 0.9
    duration_median_s: float = 3600.0
    duration_sigma: float = 1.2
    duration_max_s: float = 86400.0
    gpu_weights: dict[int, float] = field(
        default_factory=lambda: dict(_DEFAULT_GPU_WEIGHTS)
    )
    burst_fraction: float = 0.15
    n_bursts: int = 2

    def __post_init__(self) -> None:
        if not is_power_of_two(self.cluster_gpus):
            raise TraceError(
                f"cluster_gpus must be a power of two, got {self.cluster_gpus}"
            )
        if self.n_jobs < 1:
            raise TraceError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.target_load <= 0:
            raise TraceError(f"target_load must be > 0, got {self.target_load}")
        if self.duration_median_s <= 0 or self.duration_sigma <= 0:
            raise TraceError("duration parameters must be positive")
        if self.duration_max_s <= self.duration_median_s:
            raise TraceError(
                f"duration_max_s {self.duration_max_s} must exceed the median"
            )
        if not self.gpu_weights:
            raise TraceError("gpu_weights must not be empty")
        for size in self.gpu_weights:
            if not is_power_of_two(size):
                raise TraceError(f"gpu_weights key {size} is not a power of two")
        if not 0 <= self.burst_fraction < 1:
            raise TraceError(
                f"burst_fraction must be in [0, 1), got {self.burst_fraction}"
            )
        if self.n_bursts < 0:
            raise TraceError(f"n_bursts must be >= 0, got {self.n_bursts}")

    def scaled(self, factor: float) -> "ClusterTraceConfig":
        """Proportionally smaller configuration with the same offered load.

        GPU count is rounded down to a power of two (minimum 16) and the job
        count shrinks by the same ratio, so schedulers face the same
        contention at a fraction of the simulation cost.
        """
        if not 0 < factor <= 1:
            raise TraceError(f"scale factor must be in (0, 1], got {factor}")
        gpus = max(16, floor_power_of_two(int(max(16, self.cluster_gpus * factor))))
        ratio = gpus / self.cluster_gpus
        jobs = max(10, int(round(self.n_jobs * ratio)))
        capped_weights = {
            min(size, gpus): 0.0 for size in self.gpu_weights
        }
        for size, weight in self.gpu_weights.items():
            capped_weights[min(size, gpus)] += weight
        return replace(
            self,
            name=f"{self.name}-x{ratio:.3f}",
            cluster_gpus=gpus,
            n_jobs=jobs,
            gpu_weights=capped_weights,
        )


#: Ten production-like cluster configurations spanning the paper's ranges.
PRODUCTION_CLUSTERS: tuple[ClusterTraceConfig, ...] = (
    ClusterTraceConfig("cluster-1", 128, 260, target_load=1.1,
                       duration_median_s=5400.0, duration_sigma=1.4),
    ClusterTraceConfig("cluster-2", 256, 900, target_load=1.3,
                       duration_median_s=4200.0, duration_sigma=1.3),
    ClusterTraceConfig("cluster-3", 256, 1400, target_load=0.8,
                       duration_median_s=2400.0, duration_sigma=1.5),
    ClusterTraceConfig("cluster-4", 512, 2600, target_load=1.0,
                       duration_median_s=3600.0, duration_sigma=1.2),
    ClusterTraceConfig("cluster-5", 512, 3800, target_load=1.4,
                       duration_median_s=3000.0, duration_sigma=1.1),
    ClusterTraceConfig("cluster-6", 1024, 5200, target_load=0.9,
                       duration_median_s=4800.0, duration_sigma=1.3),
    ClusterTraceConfig("cluster-7", 1024, 7400, target_load=1.2,
                       duration_median_s=2700.0, duration_sigma=1.4),
    ClusterTraceConfig("cluster-8", 2048, 9800, target_load=0.7,
                       duration_median_s=3900.0, duration_sigma=1.2),
    ClusterTraceConfig("cluster-9", 2048, 12600, target_load=0.5,
                       duration_median_s=3300.0, duration_sigma=1.3),
    ClusterTraceConfig("cluster-10", 2048, 15802, target_load=0.45,
                       duration_median_s=1800.0, duration_sigma=1.5),
)


def generate_trace(
    config: ClusterTraceConfig,
    seed: int = 0,
    *,
    rng: np.random.Generator | None = None,
) -> Trace:
    """Generate a deterministic synthetic trace for one configuration.

    Args:
        config: The cluster configuration to realise.
        seed: Seed for the generator created when ``rng`` is not given.
        rng: Explicit generator, for callers that thread one RNG through a
            whole experiment (``seed`` is ignored in that case).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    sizes_pool = sorted(config.gpu_weights)
    weights = np.array([config.gpu_weights[s] for s in sizes_pool], dtype=float)
    weights /= weights.sum()

    sizes = rng.choice(sizes_pool, size=config.n_jobs, p=weights)
    sizes = np.minimum(sizes, config.cluster_gpus)
    durations = rng.lognormal(
        mean=math.log(config.duration_median_s),
        sigma=config.duration_sigma,
        size=config.n_jobs,
    )
    durations = np.clip(durations, 120.0, config.duration_max_s)

    total_gpu_seconds = float(np.sum(sizes * durations))
    span = total_gpu_seconds / (config.cluster_gpus * config.target_load)

    n_burst = int(config.burst_fraction * config.n_jobs) if config.n_bursts else 0
    n_base = config.n_jobs - n_burst
    arrivals = list(rng.uniform(0.0, span, size=n_base))
    if n_burst:
        centers = rng.uniform(0.15 * span, 0.85 * span, size=config.n_bursts)
        window = max(span * 0.01, 600.0)
        per_burst = np.array_split(np.arange(n_burst), config.n_bursts)
        for center, chunk in zip(centers, per_burst):
            arrivals.extend(
                rng.uniform(center, center + window, size=len(chunk))
            )
    arrivals = np.sort(np.asarray(arrivals))[: config.n_jobs]

    jobs = [
        TraceJob(
            job_id=f"{config.name}-{i:05d}",
            submit_time=float(arrivals[i]),
            n_gpus=int(sizes[i]),
            duration_s=float(durations[i]),
        )
        for i in range(config.n_jobs)
    ]
    return Trace(name=config.name, cluster_gpus=config.cluster_gpus, jobs=jobs)
