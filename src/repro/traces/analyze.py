"""Workload trace analysis.

Before replaying a trace it pays to know what it asks for: the offered
load over time, how requested sizes are distributed, how heavy the
duration tail is.  These are the statistics the paper summarises for its
production traces (Section 6.1) and the ones an operator needs to pick a
cluster size; :func:`analyze_trace` computes them and the CLI's
``trace-stats`` subcommand prints them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.traces.schema import Trace

__all__ = ["TraceStats", "analyze_trace", "offered_load_series"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one workload trace.

    Attributes:
        name: Trace name.
        n_jobs: Number of jobs.
        cluster_gpus: Source cluster size.
        span_hours: First-to-last submission window.
        total_gpu_hours: Offered work at requested sizes.
        mean_load: Offered GPU-time over available GPU-time across the span.
        peak_load: Largest one-hour offered load.
        duration_p50_h: Median duration, hours.
        duration_p90_h: 90th-percentile duration, hours.
        duration_max_h: Longest job, hours.
        size_histogram: Fraction of jobs per requested GPU count.
        single_gpu_fraction: Share of 1-GPU jobs (the Philly headline stat).
    """

    name: str
    n_jobs: int
    cluster_gpus: int
    span_hours: float
    total_gpu_hours: float
    mean_load: float
    peak_load: float
    duration_p50_h: float
    duration_p90_h: float
    duration_max_h: float
    size_histogram: dict[int, float]
    single_gpu_fraction: float


def offered_load_series(
    trace: Trace, *, bucket_s: float = 3600.0
) -> tuple[list[float], list[float]]:
    """Offered load per time bucket: GPU-time demanded / GPU-time available.

    A job's demand is spread uniformly over its (requested-size) runtime.

    Returns:
        (bucket start times, load values).
    """
    if bucket_s <= 0:
        raise TraceError(f"bucket_s must be > 0, got {bucket_s}")
    if not trace.jobs:
        return [], []
    horizon = max(job.submit_time + job.duration_s for job in trace.jobs)
    n_buckets = max(1, int(np.ceil(horizon / bucket_s)))
    demand = np.zeros(n_buckets)
    for job in trace.jobs:
        start, end = job.submit_time, job.submit_time + job.duration_s
        first = int(start // bucket_s)
        last = min(n_buckets - 1, int(end // bucket_s))
        for bucket in range(first, last + 1):
            bucket_start = bucket * bucket_s
            bucket_end = bucket_start + bucket_s
            overlap = min(end, bucket_end) - max(start, bucket_start)
            if overlap > 0:
                demand[bucket] += job.n_gpus * overlap
    capacity = trace.cluster_gpus * bucket_s
    times = [bucket * bucket_s for bucket in range(n_buckets)]
    return times, list(demand / capacity)


def analyze_trace(trace: Trace) -> TraceStats:
    """Compute the summary statistics of a trace.

    Raises:
        TraceError: For an empty trace.
    """
    if not trace.jobs:
        raise TraceError(f"trace {trace.name!r} has no jobs to analyse")
    durations_h = np.array([job.duration_s for job in trace.jobs]) / 3600.0
    sizes = np.array([job.n_gpus for job in trace.jobs])
    _, loads = offered_load_series(trace)
    histogram: dict[int, float] = {}
    for size in sorted(set(sizes.tolist())):
        histogram[int(size)] = float(np.mean(sizes == size))
    return TraceStats(
        name=trace.name,
        n_jobs=len(trace),
        cluster_gpus=trace.cluster_gpus,
        span_hours=trace.span_s / 3600.0,
        total_gpu_hours=trace.total_gpu_seconds / 3600.0,
        mean_load=float(np.mean(loads)),
        peak_load=float(np.max(loads)),
        duration_p50_h=float(np.percentile(durations_h, 50)),
        duration_p90_h=float(np.percentile(durations_h, 90)),
        duration_max_h=float(np.max(durations_h)),
        size_histogram=histogram,
        single_gpu_fraction=float(np.mean(sizes == 1)),
    )
