"""A Philly-like public-trace configuration.

The Microsoft Philly trace (Jeon et al., ATC 2019) is the public workload
the paper uses for its fair-comparison run (Fig 8b, rightmost group).  Its
published analysis shows a workload dominated by single-GPU jobs with a
very heavy-tailed duration distribution; this module captures those
marginals as a :class:`~repro.traces.synthetic.ClusterTraceConfig` so the
same generator machinery produces a Philly-flavoured trace.
"""

from __future__ import annotations

from repro.traces.synthetic import ClusterTraceConfig

__all__ = ["philly_config"]


def philly_config(
    *, cluster_gpus: int = 2048, n_jobs: int = 10000, target_load: float = 0.6
) -> ClusterTraceConfig:
    """Configuration matching the Philly trace's published marginals.

    Args:
        cluster_gpus: Simulated cluster size (power of two).
        n_jobs: Number of jobs to draw.
        target_load: Offered load; Philly ran well below saturation.
    """
    return ClusterTraceConfig(
        name="philly",
        cluster_gpus=cluster_gpus,
        n_jobs=n_jobs,
        target_load=target_load,
        duration_median_s=1500.0,  # most Philly jobs are short...
        duration_sigma=2.0,  # ...but the tail reaches multi-day runs
        gpu_weights={
            1: 0.70,
            2: 0.09,
            4: 0.08,
            8: 0.09,
            16: 0.03,
            32: 0.01,
        },
        burst_fraction=0.1,
        n_bursts=3,
    )
