"""Turning a trace into runnable job specs (paper Section 6.1).

Trace rows carry only submission time, GPU count, and duration.  Following
the paper, each job is assigned a random (model, batch size) pair from the
Table 1 pool, and its iteration count is derived from the trace duration
and the profiled throughput at the trace's GPU count — so a trace job that
ran two hours on four GPUs becomes a spec whose work equals two hours of
the chosen model's four-GPU throughput.
"""

from __future__ import annotations

import numpy as np

from repro.core.job import JobSpec
from repro.errors import TraceError
from repro.profiles.modelzoo import TABLE1_SETTINGS
from repro.profiles.throughput import ThroughputModel
from repro.traces.deadlines import DeadlineAssigner
from repro.traces.schema import Trace

__all__ = ["build_jobs"]


def build_jobs(
    trace: Trace,
    throughput: ThroughputModel,
    *,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    deadlines: DeadlineAssigner | None = None,
    best_effort_fraction: float = 0.0,
    model_pool: tuple[tuple[str, int], ...] = TABLE1_SETTINGS,
) -> list[JobSpec]:
    """Instantiate every trace row as a submittable :class:`JobSpec`.

    Args:
        trace: Source trace.
        throughput: Profiled scaling curves used to convert durations into
            iteration counts (the engine uses the same curves, mirroring the
            paper's profile-then-simulate methodology).
        seed: Seed for model assignment, deadline tightness, and the
            best-effort lottery.
        rng: Explicit generator for callers threading one RNG through a
            whole experiment (``seed`` is ignored in that case).
        deadlines: Tightness distribution; defaults to U[0.5, 1.5].
        best_effort_fraction: Fraction of jobs submitted without a deadline
            (Section 6.5's SLO/best-effort mix).
        model_pool: (model, global batch) candidates, defaults to Table 1.

    Raises:
        TraceError: If the trace is empty or the fraction is out of range.
    """
    if not trace.jobs:
        raise TraceError(f"trace {trace.name!r} has no jobs")
    if not 0.0 <= best_effort_fraction <= 1.0:
        raise TraceError(
            f"best_effort_fraction must be in [0, 1], got {best_effort_fraction}"
        )
    if not model_pool:
        raise TraceError("model_pool must not be empty")
    assigner = deadlines or DeadlineAssigner()
    if rng is None:
        rng = np.random.default_rng(seed)
    specs: list[JobSpec] = []
    for row in trace.jobs:
        model_name, batch = model_pool[int(rng.integers(len(model_pool)))]
        curve = throughput.curve(model_name, batch)
        rate = curve.effective_throughput(row.n_gpus)
        iterations = max(1, int(round(row.duration_s * rate)))
        best_effort = bool(rng.random() < best_effort_fraction)
        deadline = None if best_effort else assigner.deadline_for(row, rng)
        specs.append(
            JobSpec(
                job_id=row.job_id,
                model_name=model_name,
                global_batch_size=batch,
                max_iterations=iterations,
                submit_time=row.submit_time,
                deadline=deadline,
                requested_gpus=row.n_gpus,
            )
        )
    return specs
