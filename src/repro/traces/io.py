"""Trace serialisation: bring your own production trace.

The synthetic generators stand in for the paper's private traces, but a
downstream user with real cluster logs only needs the three columns the
pipeline consumes: submission time, GPU count, and duration.  This module
round-trips :class:`~repro.traces.schema.Trace` through JSON (full fidelity)
and CSV (interchange with spreadsheet-shaped exports).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import TraceError
from repro.traces.schema import Trace, TraceJob

__all__ = ["trace_to_json", "trace_from_json", "write_trace_csv", "read_trace_csv"]

_CSV_FIELDS = ("job_id", "submit_time", "n_gpus", "duration_s")


def trace_to_json(trace: Trace) -> str:
    """Serialise a trace to a JSON document."""
    payload = {
        "name": trace.name,
        "cluster_gpus": trace.cluster_gpus,
        "jobs": [
            {
                "job_id": job.job_id,
                "submit_time": job.submit_time,
                "n_gpus": job.n_gpus,
                "duration_s": job.duration_s,
            }
            for job in trace.jobs
        ],
    }
    return json.dumps(payload, indent=2)


def trace_from_json(document: str) -> Trace:
    """Parse a trace from the JSON document produced by :func:`trace_to_json`.

    Raises:
        TraceError: On malformed JSON or schema violations.
    """
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid trace JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise TraceError("trace JSON must be an object")
    missing = {"name", "cluster_gpus", "jobs"} - set(payload)
    if missing:
        raise TraceError(f"trace JSON missing keys: {sorted(missing)}")
    try:
        jobs = [
            TraceJob(
                job_id=str(row["job_id"]),
                submit_time=float(row["submit_time"]),
                n_gpus=int(row["n_gpus"]),
                duration_s=float(row["duration_s"]),
            )
            for row in payload["jobs"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed trace job row: {exc}") from exc
    return Trace(
        name=str(payload["name"]),
        cluster_gpus=int(payload["cluster_gpus"]),
        jobs=jobs,
    )


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace as CSV (cluster size goes in the filename's sidecar
    JSON header line, ``# cluster_gpus=N``)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(f"# name={trace.name} cluster_gpus={trace.cluster_gpus}\n")
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for job in trace.jobs:
            writer.writerow(
                {
                    "job_id": job.job_id,
                    "submit_time": job.submit_time,
                    "n_gpus": job.n_gpus,
                    "duration_s": job.duration_s,
                }
            )


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`.

    Raises:
        TraceError: On a malformed header or rows.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    if not lines or not lines[0].startswith("#"):
        raise TraceError(f"{path}: missing '# name=... cluster_gpus=...' header")
    header = dict(
        part.split("=", 1) for part in lines[0].lstrip("# ").split() if "=" in part
    )
    if "name" not in header or "cluster_gpus" not in header:
        raise TraceError(f"{path}: header must carry name= and cluster_gpus=")
    reader = csv.DictReader(lines[1:])
    jobs = []
    try:
        for row in reader:
            jobs.append(
                TraceJob(
                    job_id=row["job_id"],
                    submit_time=float(row["submit_time"]),
                    n_gpus=int(row["n_gpus"]),
                    duration_s=float(row["duration_s"]),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed row: {exc}") from exc
    return Trace(
        name=header["name"], cluster_gpus=int(header["cluster_gpus"]), jobs=jobs
    )
