"""Trace data model.

A trace is the minimal record the paper's pipeline consumes: per job, the
submission time, the GPU count the user asked for, and how long the job ran
at that count.  Model identity, iteration counts, and deadlines are layered
on top by :mod:`repro.traces.workload`, exactly as the paper does with its
production traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.numeric import is_power_of_two

__all__ = ["TraceJob", "Trace"]


@dataclass(frozen=True)
class TraceJob:
    """One row of a workload trace.

    Attributes:
        job_id: Unique id within the trace.
        submit_time: Seconds since trace start.
        n_gpus: GPU count the job ran on (power of two).
        duration_s: Runtime at that GPU count, in seconds.
    """

    job_id: str
    submit_time: float
    n_gpus: int
    duration_s: float

    def __post_init__(self) -> None:
        if not self.job_id:
            raise TraceError("job_id must be non-empty")
        if self.submit_time < 0:
            raise TraceError(f"submit_time must be >= 0, got {self.submit_time}")
        if not is_power_of_two(self.n_gpus):
            raise TraceError(
                f"n_gpus must be a positive power of two, got {self.n_gpus}"
            )
        if self.duration_s <= 0:
            raise TraceError(f"duration_s must be > 0, got {self.duration_s}")

    @property
    def gpu_seconds(self) -> float:
        return self.n_gpus * self.duration_s


@dataclass
class Trace:
    """A named collection of trace jobs plus the cluster they ran on.

    Attributes:
        name: Trace identifier (e.g. ``cluster-3`` or ``philly``).
        cluster_gpus: Size of the source cluster.
        jobs: Rows, kept sorted by submission time.
    """

    name: str
    cluster_gpus: int
    jobs: list[TraceJob] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceError("trace name must be non-empty")
        if self.cluster_gpus < 1:
            raise TraceError(
                f"cluster_gpus must be >= 1, got {self.cluster_gpus}"
            )
        ids = [job.job_id for job in self.jobs]
        if len(ids) != len(set(ids)):
            raise TraceError(f"trace {self.name!r} contains duplicate job ids")
        self.jobs = sorted(self.jobs, key=lambda j: (j.submit_time, j.job_id))

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def span_s(self) -> float:
        """Seconds between the first and last submission."""
        if not self.jobs:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    @property
    def total_gpu_seconds(self) -> float:
        return sum(job.gpu_seconds for job in self.jobs)

    def load_factor(self) -> float:
        """Offered load: requested GPU-time over available GPU-time.

        Values near or above 1 mean the cluster cannot serve every job at
        its requested size before more work arrives.
        """
        if not self.jobs:
            return 0.0
        horizon = self.jobs[-1].submit_time + max(j.duration_s for j in self.jobs)
        if horizon <= 0:
            return 0.0
        return self.total_gpu_seconds / (self.cluster_gpus * horizon)

    def head(self, n: int) -> "Trace":
        """A new trace containing only the first ``n`` submissions."""
        if n < 0:
            raise TraceError(f"n must be >= 0, got {n}")
        return Trace(
            name=f"{self.name}[:{n}]",
            cluster_gpus=self.cluster_gpus,
            jobs=self.jobs[:n],
        )
