"""Workload traces: schema, generators, and the job builder.

The paper drives its evaluation with two-month traces from ten production
clusters (164-2783 GPUs, 260-15802 jobs each) plus the public Microsoft
Philly trace.  Those traces are not publicly redistributable, so this
package generates statistically similar synthetic traces: each trace job
carries only what the paper consumes — submission time, requested GPU
count, and duration — drawn from per-cluster size/load/duration
distributions, with deadlines assigned as ``lambda * duration`` after
submission with ``lambda ~ U[0.5, 1.5]`` (Section 6.1).
"""

from repro.traces.schema import Trace, TraceJob
from repro.traces.synthetic import (
    PRODUCTION_CLUSTERS,
    ClusterTraceConfig,
    generate_trace,
)
from repro.traces.philly import philly_config
from repro.traces.deadlines import DeadlineAssigner
from repro.traces.workload import build_jobs
from repro.traces.io import (
    read_trace_csv,
    trace_from_json,
    trace_to_json,
    write_trace_csv,
)
from repro.traces.analyze import TraceStats, analyze_trace, offered_load_series

__all__ = [
    "Trace",
    "TraceJob",
    "PRODUCTION_CLUSTERS",
    "ClusterTraceConfig",
    "generate_trace",
    "philly_config",
    "DeadlineAssigner",
    "build_jobs",
    "trace_to_json",
    "trace_from_json",
    "write_trace_csv",
    "read_trace_csv",
    "TraceStats",
    "analyze_trace",
    "offered_load_series",
]
