"""Deadline assignment (paper Section 6.1).

Production traces carry no deadline information, so the paper sets each
job's deadline to ``lambda * duration`` after its submission, with the
tightness ``lambda`` drawn uniformly from [0.5, 1.5].  A job with
``lambda < 1`` can still make its deadline — the platform just has to scale
it beyond its trace-requested size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.numeric import feq
from repro.traces.schema import TraceJob

__all__ = ["DeadlineAssigner"]


@dataclass(frozen=True)
class DeadlineAssigner:
    """Draws per-job deadline tightness factors.

    Attributes:
        lambda_min: Lower bound of the tightness distribution.
        lambda_max: Upper bound; ``lambda_min == lambda_max`` pins every job
            to a fixed tightness (used by the Fig 10 fair-comparison run,
            which sets lambda = 1.5 so every scheduler runs the same jobs).
    """

    lambda_min: float = 0.5
    lambda_max: float = 1.5

    def __post_init__(self) -> None:
        if self.lambda_min <= 0:
            raise TraceError(f"lambda_min must be > 0, got {self.lambda_min}")
        if self.lambda_max < self.lambda_min:
            raise TraceError(
                f"lambda_max {self.lambda_max} < lambda_min {self.lambda_min}"
            )

    def draw(self, rng: np.random.Generator) -> float:
        """One tightness factor."""
        if feq(self.lambda_min, self.lambda_max):
            return self.lambda_min
        return float(rng.uniform(self.lambda_min, self.lambda_max))

    def deadline_for(self, job: TraceJob, rng: np.random.Generator) -> float:
        """Absolute deadline for one trace job."""
        return job.submit_time + self.draw(rng) * job.duration_s
