"""ElasticFlow reproduction: elastic serverless deadline-driven DL scheduling.

A from-scratch Python implementation of *ElasticFlow: An Elastic Serverless
Training Platform for Distributed Deep Learning* (ASPLOS 2023) — the
scheduler (Minimum Satisfactory Share admission control, greedy elastic
allocation, buddy-allocation placement) together with every substrate the
paper's evaluation needs: a discrete-event GPU-cluster simulator, an
analytic throughput model for the Table 1 workloads, production-like trace
generators, and the six baseline schedulers.

Quickstart::

    from repro import ClusterSpec, ElasticFlowPolicy, JobSpec, Simulator

    jobs = [JobSpec(job_id="j1", model_name="resnet50",
                    global_batch_size=128, max_iterations=60_000,
                    deadline=3600.0)]
    result = Simulator(ClusterSpec(n_nodes=2, gpus_per_node=8),
                       ElasticFlowPolicy(), jobs).run()
    print(result.deadline_satisfactory_ratio)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.cluster.topology import ClusterSpec
from repro.core.job import Job, JobSpec, JobStatus
from repro.core.scheduler import ElasticFlowPolicy
from repro.errors import ReproError
from repro.platform import ElasticFlowPlatform, JobHandle
from repro.profiles.throughput import ThroughputModel
from repro.sim.engine import Simulator
from repro.sim.metrics import SimulationResult

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "Job",
    "JobSpec",
    "JobStatus",
    "ElasticFlowPolicy",
    "ElasticFlowPlatform",
    "JobHandle",
    "ReproError",
    "ThroughputModel",
    "Simulator",
    "SimulationResult",
    "__version__",
]
