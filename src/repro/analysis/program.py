"""Whole-program view handed to rules in the *prepare* phase.

The runner builds one :class:`Program` per analysis run.  File-local
rules never touch it; interprocedural rules ask for :attr:`callgraph` /
:attr:`effects`, which are built lazily (and exactly once) so a run of
purely file-local rules pays nothing.  Build time is recorded for the
benchmark export.
"""

from __future__ import annotations

import time

from repro.analysis.callgraph import CallGraph
from repro.analysis.context import FileContext
from repro.analysis.effects import EffectAnalysis

__all__ = ["Program"]


class Program:
    """The analysed file set plus lazily built interprocedural indexes."""

    def __init__(self, contexts: list[FileContext]) -> None:
        self.contexts = contexts
        self.context_by_path = {str(ctx.path): ctx for ctx in contexts}
        self._callgraph: CallGraph | None = None
        self._effects: EffectAnalysis | None = None
        self.callgraph_build_seconds: float = 0.0
        self.effects_build_seconds: float = 0.0

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            start = time.perf_counter()
            self._callgraph = CallGraph.build(self.contexts)
            self.callgraph_build_seconds = time.perf_counter() - start
        return self._callgraph

    @property
    def effects(self) -> EffectAnalysis:
        if self._effects is None:
            graph = self.callgraph
            start = time.perf_counter()
            self._effects = EffectAnalysis(graph)
            self.effects_build_seconds = time.perf_counter() - start
        return self._effects

    @property
    def built(self) -> bool:
        """Whether any rule actually requested the interprocedural view."""
        return self._callgraph is not None

    def stats(self) -> dict[str, float | int]:
        """Coverage + build-time statistics for reports and benchmarks."""
        if self._callgraph is None:
            return {}
        coverage = self._callgraph.coverage()
        coverage["build_seconds"] = round(
            self.callgraph_build_seconds + self.effects_build_seconds, 4
        )
        coverage["coverage"] = round(float(coverage["coverage"]), 4)
        return coverage
