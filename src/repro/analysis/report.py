"""Analysis run results and their two renderings (human text / JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Severity

__all__ = ["AnalysisReport"]


@dataclass
class AnalysisReport:
    """Outcome of one analysis run.

    Attributes:
        findings: New findings — not suppressed, not baselined.  These
            gate the build.
        baselined: Findings matched by the committed baseline.
        suppressed: Findings silenced by justified inline suppressions.
        files_analyzed: Number of files parsed and checked.
        rules_run: Number of rules that ran.
        duration_seconds: Wall time of the run.
        rule_timings: Per-rule wall seconds (collect + prepare + check),
            excluding the shared interprocedural engine build.
        callgraph: Call-graph statistics (site counts, coverage, build
            seconds) — empty when no rule requested the engine.
        changed_scope: In ``--changed`` mode, the sorted affected modules
            findings were limited to; ``None`` for a full run.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: int = 0
    duration_seconds: float = 0.0
    rule_timings: dict[str, float] = field(default_factory=dict)
    callgraph: dict[str, float | int] = field(default_factory=dict)
    changed_scope: list[str] | None = None

    @property
    def gating_findings(self) -> list[Finding]:
        """New findings at ERROR severity — the ones that fail the run."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.gating_findings

    def to_json(self) -> str:
        document = {
            "ok": self.ok,
            "files_analyzed": self.files_analyzed,
            "rules_run": self.rules_run,
            "duration_seconds": round(self.duration_seconds, 4),
            "rule_timings": self.rule_timings,
            "callgraph": self.callgraph,
            "changed_scope": self.changed_scope,
            "counts": {
                "new": len(self.findings),
                "gating": len(self.gating_findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.to_dict() for f in sorted(self.findings)],
        }
        return json.dumps(document, indent=2)

    def format_human(self) -> str:
        out: list[str] = []
        for finding in sorted(self.findings):
            out.append(finding.format_human())
        summary = (
            f"{len(self.findings)} new finding(s) "
            f"({len(self.gating_findings)} gating), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed; "
            f"{self.files_analyzed} file(s), {self.rules_run} rule(s), "
            f"{self.duration_seconds:.2f}s"
        )
        if self.callgraph:
            summary += (
                f"; call graph: {self.callgraph.get('call_sites', 0)} sites, "
                f"{100 * float(self.callgraph.get('coverage', 0.0)):.1f}% "
                f"resolved"
            )
        if self.changed_scope is not None:
            summary += (
                f"; incremental: findings limited to "
                f"{len(self.changed_scope)} affected module(s)"
            )
        if out:
            out.append("")
        out.append(summary)
        return "\n".join(out)
