"""Project-wide symbol table and call graph (stdlib ``ast`` only).

This is the foundation of the interprocedural pass: one
:class:`CallGraph` indexes every module-level function, every class and
its methods, the ``@coherent``/``@keyed``/``@mutates``/``@invalidates``
declarations from :mod:`repro.perf.coherence`, and every call site, each
resolved to its in-tree callee(s) where possible.

Resolution is deliberately layered (most precise first):

1. **Typed receivers** — ``self.m(...)`` resolves through the enclosing
   class (walking base classes by name); ``obj.m(...)`` resolves when the
   receiver's class is known from a parameter annotation, a local
   ``obj = ClassName(...)`` construction, or an instance-attribute type
   recorded from ``__init__`` / class-body annotations.
2. **Module bindings** — names bound by ``import``/``from ... import``
   resolve either to in-tree functions/classes or to provably-external
   modules (numpy, stdlib).
3. **Name fallback** — a bare name matching a module-level function of the
   same module, a class (constructor call), or a builtin.
4. **Unique-method fallback** — an attribute call on an untyped receiver
   whose method name is defined by in-tree classes resolves to *all*
   candidates (sound over-approximation); a method name defined by **no**
   in-tree class is provably external.

Anything else (calls through local callable variables, ``getattr``
dispatch) is counted *unresolved*; the coverage statistic reported in
``BENCH_analysis.json`` is ``(internal + external) / total`` and the
acceptance bar for this tree is >= 95% (see docs/static-analysis.md).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from repro.analysis.astutil import (
    MUTATING_METHODS,
    decorator_call,
    dotted,
    string_args,
    string_keywords,
)
from repro.analysis.context import FileContext

__all__ = ["CallGraph", "CallSite", "ClassInfo", "FunctionInfo", "bind_args"]

#: Names that resolve through the interpreter, never through this tree.
_BUILTIN_NAMES = frozenset(dir(builtins))

#: Pseudo-function name for module-level (import-time) call sites.
MODULE_SCOPE = "<module>"


@dataclass
class FunctionInfo:
    """One module-level function or method, as indexed from source."""

    qualname: str
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    mutates: tuple[str, ...] = ()
    invalidates: tuple[str, ...] = ()
    is_property: bool = False
    params: tuple[str, ...] = ()
    param_types: dict[str, str] = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class: methods, bases, and its coherence declarations."""

    name: str
    module: str
    qualname: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    coherent_fields: dict[str, str] = field(default_factory=dict)
    keyed_fields: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One ``ast.Call``, attributed to its enclosing function."""

    caller: str
    node: ast.Call
    path: str
    line: int
    name: str
    callees: tuple[str, ...] = ()
    resolution: str = "unresolved"  # "internal" | "external" | "unresolved"


def _annotation_class(annotation: ast.AST | None) -> str | None:
    """Bare class name named by a parameter/attribute annotation, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # ``Ledger | None`` — take whichever side names a class.
        return _annotation_class(annotation.left) or _annotation_class(
            annotation.right
        )
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.split("|")[0].strip()
        if text and all(part.isidentifier() for part in text.split(".")):
            return text.split(".")[-1]
    if isinstance(annotation, ast.Subscript):
        value = annotation.value
        if isinstance(value, ast.Name) and value.id == "Optional":
            return _annotation_class(annotation.slice)
    return None


def _mutates_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    declared: list[str] = []
    for decorator in node.decorator_list:
        call = decorator_call(decorator, "mutates")
        if call is not None:
            declared.extend(string_args(call))
    return tuple(declared)


def _invalidates_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    provided: list[str] = []
    for decorator in node.decorator_list:
        call = decorator_call(decorator, "invalidates")
        if call is not None:
            provided.extend(string_args(call))
    return tuple(provided)


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in (
            "property",
            "cached_property",
        ):
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr in (
            "property",
            "cached_property",
        ):
            return True
    return False


def bind_args(
    site: ast.Call, callee: FunctionInfo, *, method_call: bool
) -> list[tuple[str, ast.AST]]:
    """Map a call's argument expressions onto the callee's parameter names.

    ``method_call`` strips the implicit ``self``/``cls`` first parameter
    (the receiver is the attribute base, not an argument expression).
    ``*args``/``**kwargs`` forwarding is ignored — the analysis treats it
    as unresolved data flow rather than guessing.
    """
    params = list(callee.params)
    if method_call and params and params[0] in ("self", "cls"):
        params = params[1:]
    bound: list[tuple[str, ast.AST]] = []
    for index, arg in enumerate(site.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            bound.append((params[index], arg))
    for keyword in site.keywords:
        if keyword.arg is not None and keyword.arg in callee.params:
            bound.append((keyword.arg, keyword.value))
    return bound


class CallGraph:
    """The whole-program symbol table plus resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: invalidation name -> function qualnames declaring @invalidates.
        self.providers: dict[str, set[str]] = {}
        #: method bare name -> qualnames across all classes.
        self.methods_by_name: dict[str, list[str]] = {}
        #: (module, name) -> qualname of a module-level function.
        self.module_functions: dict[tuple[str, str], str] = {}
        #: module -> {bound name -> dotted import target}.
        self.imports: dict[str, dict[str, str]] = {}
        #: module -> in-tree modules it imports (for --changed closure).
        self.module_deps: dict[str, set[str]] = {}
        self.modules: set[str] = set()
        self.call_sites: list[CallSite] = []
        #: caller qualname -> its call sites (internal edges live here).
        self.edges: dict[str, list[CallSite]] = {}
        #: callee qualname -> caller qualnames.
        self.callers: dict[str, set[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "CallGraph":
        graph = cls()
        for ctx in contexts:
            graph._index_module(ctx)
        for ctx in contexts:
            graph._resolve_module(ctx)
        return graph

    def _index_module(self, ctx: FileContext) -> None:
        module = ctx.module
        self.modules.add(module)
        bindings = self.imports.setdefault(module, {})
        deps = self.module_deps.setdefault(module, set())
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bindings[alias.asname or alias.name.split(".")[0]] = alias.name
                    if alias.name.startswith("repro"):
                        deps.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    deps.add(node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{node.module}.{alias.name}"
                    bindings[alias.asname or alias.name] = target
                    if node.module.startswith("repro"):
                        deps.add(target)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, stmt)

    def _index_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        class_name: str | None,
    ) -> FunctionInfo:
        if class_name is None:
            qualname = f"{ctx.module}.{node.name}"
        else:
            qualname = f"{ctx.module}.{class_name}.{node.name}"
        params = tuple(
            arg.arg
            for arg in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
        )
        param_types: dict[str, str] = {}
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            annotated = _annotation_class(arg.annotation)
            if annotated is not None:
                param_types[arg.arg] = annotated
        info = FunctionInfo(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            class_name=class_name,
            node=node,
            path=str(ctx.path),
            mutates=_mutates_of(node),
            invalidates=_invalidates_of(node),
            is_property=_is_property(node),
            params=params,
            param_types=param_types,
        )
        self.functions[qualname] = info
        for dependency in info.invalidates:
            self.providers.setdefault(dependency, set()).add(qualname)
        if class_name is None:
            self.module_functions[(ctx.module, node.name)] = qualname
        else:
            self.methods_by_name.setdefault(node.name, []).append(qualname)
        return info

    def _index_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.module}.{node.name}"
        info = ClassInfo(
            name=node.name,
            module=ctx.module,
            qualname=qualname,
            node=node,
            bases=tuple(
                base.id if isinstance(base, ast.Name) else base.attr
                for base in node.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            ),
        )
        for decorator in node.decorator_list:
            call = decorator_call(decorator, "coherent")
            if call is not None:
                info.coherent_fields.update(string_keywords(call))
            call = decorator_call(decorator, "keyed")
            if call is not None:
                info.keyed_fields.update(string_keywords(call))
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._index_function(ctx, item, class_name=node.name)
                info.methods[item.name] = method.qualname
                if item.name in ("__init__", "__post_init__"):
                    self._collect_attr_types(info, item)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                annotated = _annotation_class(item.annotation)
                if annotated is not None:
                    info.attr_types[item.target.id] = annotated
        # First definition wins on bare-name collisions (none in-tree today;
        # fixtures masquerading under lint-module directives stay isolated
        # because fixture runs analyse one file at a time).
        self.classes.setdefault(node.name, info)

    def _collect_attr_types(
        self, info: ClassInfo, ctor: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        param_types: dict[str, str] = {}
        for arg in ctor.args.posonlyargs + ctor.args.args + ctor.args.kwonlyargs:
            annotated = _annotation_class(arg.annotation)
            if annotated is not None:
                param_types[arg.arg] = annotated
        for node in ast.walk(ctor):
            target: ast.AST | None = None
            value: ast.AST | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if isinstance(target, ast.Attribute):
                    annotated = _annotation_class(node.annotation)
                    if annotated is not None and isinstance(
                        target.value, ast.Name
                    ) and target.value.id == "self":
                        info.attr_types.setdefault(target.attr, annotated)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if isinstance(value, ast.Call):
                    callee = value.func
                    name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr
                        if isinstance(callee, ast.Attribute)
                        else None
                    )
                    if name is not None and name[:1].isupper():
                        info.attr_types.setdefault(target.attr, name)
                elif isinstance(value, ast.Name) and value.id in param_types:
                    info.attr_types.setdefault(target.attr, param_types[value.id])

    # -- lookup helpers ----------------------------------------------------

    def method_on(self, class_name: str, method: str) -> str | None:
        """Resolve a method through a class and its (named) bases."""
        seen: set[str] = set()
        stack = [class_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            qualname = info.methods.get(method)
            if qualname is not None:
                return qualname
            stack.extend(info.bases)
        return None

    def class_of(self, qualname: str) -> ClassInfo | None:
        info = self.functions.get(qualname)
        if info is None or info.class_name is None:
            return None
        return self.classes.get(info.class_name)

    def sites_in(self, qualname: str) -> list[CallSite]:
        return self.edges.get(qualname, [])

    # -- call-site resolution ----------------------------------------------

    def _resolve_module(self, ctx: FileContext) -> None:
        module = ctx.module
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._resolve_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._resolve_function(ctx, item, class_name=stmt.name)
                    else:
                        self._resolve_stray(ctx, item, f"{module}.{MODULE_SCOPE}")
            else:
                self._resolve_stray(ctx, stmt, f"{module}.{MODULE_SCOPE}")

    def _resolve_stray(self, ctx: FileContext, node: ast.AST, caller: str) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_site(ctx, caller, sub, class_name=None, func=None)

    def _resolve_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        class_name: str | None,
    ) -> None:
        if class_name is None:
            qualname = f"{ctx.module}.{node.name}"
        else:
            qualname = f"{ctx.module}.{class_name}.{node.name}"
        info = self.functions.get(qualname)
        local_types = dict(info.param_types) if info is not None else {}
        locally_bound: set[str] = set(info.params) if info is not None else set()
        # One ordered pass records local constructions (``x = Ledger(...)``,
        # ``x = self.attr``) so later receivers type-resolve; control flow
        # is ignored — a wrong branch costs precision, never soundness,
        # because ambiguous receivers fall back to all-candidates.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    locally_bound.add(target.id)
                    inferred = self._expr_type(
                        sub.value, class_name, local_types
                    )
                    if inferred is not None:
                        local_types[target.id] = inferred
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_site(
                    ctx,
                    qualname,
                    sub,
                    class_name=class_name,
                    func=info,
                    local_types=local_types,
                    locally_bound=locally_bound,
                )

    def _expr_type(
        self,
        expr: ast.AST,
        class_name: str | None,
        local_types: dict[str, str],
    ) -> str | None:
        """Bare class name of an expression's value, when statically known."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and class_name is not None:
                return class_name
            return local_types.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and class_name is not None:
                owner = self.classes.get(class_name)
                if owner is not None:
                    return owner.attr_types.get(expr.attr)
            receiver_type = local_types.get(expr.value.id)
            if receiver_type is not None:
                owner = self.classes.get(receiver_type)
                if owner is not None:
                    return owner.attr_types.get(expr.attr)
        if isinstance(expr, ast.Call):
            callee = expr.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if name is not None and name in self.classes:
                return name
        if isinstance(expr, ast.IfExp):
            body = self._expr_type(expr.body, class_name, local_types)
            orelse = self._expr_type(expr.orelse, class_name, local_types)
            if body is not None and orelse in (None, body):
                return body
            if body is None:
                return orelse
        return None

    def _record_site(
        self,
        ctx: FileContext,
        caller: str,
        node: ast.Call,
        *,
        class_name: str | None,
        func: FunctionInfo | None,
        local_types: dict[str, str] | None = None,
        locally_bound: set[str] | None = None,
    ) -> None:
        local_types = local_types or {}
        locally_bound = locally_bound or set()
        name = dotted(node.func) or (
            node.func.attr if isinstance(node.func, ast.Attribute) else "<dynamic>"
        )
        site = CallSite(
            caller=caller,
            node=node,
            path=str(ctx.path),
            line=node.lineno,
            name=name,
        )
        callees, resolution = self._resolve_callee(
            ctx, node.func, class_name, local_types, locally_bound
        )
        site.callees = tuple(callees)
        site.resolution = resolution
        self.call_sites.append(site)
        self.edges.setdefault(caller, []).append(site)
        for callee in callees:
            self.callers.setdefault(callee, set()).add(caller)

    def _resolve_callee(
        self,
        ctx: FileContext,
        func: ast.AST,
        class_name: str | None,
        local_types: dict[str, str],
        locally_bound: set[str],
    ) -> tuple[list[str], str]:
        module = ctx.module
        bindings = self.imports.get(module, {})
        if isinstance(func, ast.Name):
            name = func.id
            target = bindings.get(name)
            if target is not None:
                return self._resolve_dotted_target(target)
            qualname = self.module_functions.get((module, name))
            if qualname is not None:
                return [qualname], "internal"
            if name in self.classes and self.classes[name].module == module:
                ctor = self.method_on(name, "__init__")
                return ([ctor], "internal") if ctor else ([], "external")
            if name in _BUILTIN_NAMES and name not in locally_bound:
                return [], "external"
            return [], "unresolved"
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            # Module-qualified call: ``np.zeros``, ``tables.ladder_consts``.
            if isinstance(receiver, ast.Name):
                target = bindings.get(receiver.id)
                if target is not None and receiver.id not in locally_bound:
                    return self._resolve_dotted_target(f"{target}.{method}")
            receiver_type = self._expr_type(receiver, class_name, local_types)
            if receiver_type is not None and receiver_type in self.classes:
                qualname = self.method_on(receiver_type, method)
                if qualname is not None:
                    return [qualname], "internal"
                return [], "external"  # e.g. dict/ndarray attr on typed recv
            # Builtin container-protocol names on an *untyped* receiver are
            # overwhelmingly list/dict/set operations; resolving them to a
            # same-named in-tree method (``workers.clear()`` -> ``Ledger.
            # clear``) would fabricate edges.  Typed receivers resolved
            # above still reach in-tree methods of these names.
            if method in MUTATING_METHODS:
                return [], "external"
            candidates = self.methods_by_name.get(method)
            if candidates:
                return list(candidates), "internal"
            # No in-tree callable has this name: provably external.
            return [], "external"
        # Chained/ subscripted call expressions: ``f()()``, ``fns[i]()``.
        return [], "unresolved"

    def _resolve_dotted_target(self, target: str) -> tuple[list[str], str]:
        """Resolve a fully-qualified import target to in-tree functions."""
        if not target.startswith("repro"):
            return [], "external"
        qualname = target
        if qualname in self.functions:
            return [qualname], "internal"
        # ``repro.pkg.Class`` constructor or ``repro.pkg.mod.func``.
        parts = target.split(".")
        tail = parts[-1]
        if tail in self.classes:
            ctor = self.method_on(tail, "__init__")
            return ([ctor], "internal") if ctor else ([], "external")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            remainder = parts[split:]
            if module in self.modules and remainder:
                if len(remainder) == 1:
                    qualname = self.module_functions.get((module, remainder[0]))
                    if qualname is not None:
                        return [qualname], "internal"
                if remainder[0] in self.classes and len(remainder) == 2:
                    method = self.method_on(remainder[0], remainder[1])
                    if method is not None:
                        return [method], "internal"
                # A re-exported name (``from repro.core import Ledger`` via
                # a package __init__): fall through to bare-name lookup.
                if remainder[-1] in self.classes:
                    ctor = self.method_on(remainder[-1], "__init__")
                    return ([ctor], "internal") if ctor else ([], "external")
        # In-tree module attribute we could not pin down (re-export chains,
        # module objects passed around): treat as external, not unresolved —
        # the name provably left the analysed source set.
        return [], "external"

    # -- statistics --------------------------------------------------------

    def coverage(self) -> dict[str, float | int]:
        total = len(self.call_sites)
        internal = sum(1 for s in self.call_sites if s.resolution == "internal")
        external = sum(1 for s in self.call_sites if s.resolution == "external")
        unresolved = total - internal - external
        resolved = internal + external
        return {
            "call_sites": total,
            "internal": internal,
            "external": external,
            "unresolved": unresolved,
            "coverage": (resolved / total) if total else 1.0,
        }
