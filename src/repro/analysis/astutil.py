"""Shared AST helpers for the analysis engine and its rules.

The interprocedural engine (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.effects`) and several rule modules need the same
small vocabulary: reading decorator calls, flattening dotted call paths,
classifying ``@coherent`` dependency strings, and recognising in-place
mutation syntax.  Keeping those here (and not in a rule module) lets the
engine stay importable without touching :mod:`repro.analysis.rules` —
rules import the engine, never the other way round.
"""

from __future__ import annotations

import ast

from repro.perf.coherence import parse_dependency

__all__ = [
    "CONSTRUCTORS",
    "DECISION_SCOPE",
    "FROZEN",
    "MUTATING_METHODS",
    "VERIFIED",
    "decorator_call",
    "dep_kind",
    "dep_verifiers",
    "dotted",
    "string_args",
    "string_keywords",
]

#: Method-call names that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "add", "remove", "discard", "pop", "popitem", "clear",
    "update", "setdefault", "extend", "insert", "sort", "reverse",
    "move_to_end", "fill", "resize",
}

#: The ``@coherent`` dependency kind meaning "never mutate after init".
FROZEN = "frozen"

#: The ``@coherent`` dependency kind for advisory state re-checked against
#: ground truth at every point of use (optionally ``"verified:<fn>"`` with
#: a declared verifier — see :func:`repro.perf.coherence.parse_dependency`).
VERIFIED = "verified"

#: Methods allowed to touch coherent fields without a declaration: object
#: construction, which by definition precedes any derived cache.
CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}

#: Packages whose code makes or replays scheduling decisions.
DECISION_SCOPE = ("repro.core", "repro.sim", "repro.perf", "repro.baselines")


def decorator_call(node: ast.AST, name: str) -> ast.Call | None:
    """The decorator node if it is ``@name(...)`` (possibly dotted)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == name:
        return node
    if isinstance(func, ast.Attribute) and func.attr == name:
        return node
    return None


def string_args(call: ast.Call) -> list[str]:
    """The call's positional string-literal arguments."""
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def string_keywords(call: ast.Call) -> dict[str, str]:
    """The call's ``name="literal"`` keyword arguments."""
    out: dict[str, str] = {}
    for keyword in call.keywords:
        if keyword.arg and isinstance(keyword.value, ast.Constant) and isinstance(
            keyword.value.value, str
        ):
            out[keyword.arg] = keyword.value.value
    return out


def dotted(node: ast.AST) -> str | None:
    """Best-effort dotted path of a call target (``a.b.c`` -> ``"a.b.c"``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dep_kind(dependency: str) -> str:
    """Classify one ``@coherent`` dependency string.

    Returns ``"frozen"``, ``"verified"`` or ``"hook"`` (the default:
    the string names an invalidation-registry entry).
    """
    kind, _ = parse_dependency(dependency)
    return kind


def dep_verifiers(dependency: str) -> tuple[str, ...]:
    """Declared verifier names of a ``"verified:<fn>[,<fn>...]"`` string."""
    _, verifiers = parse_dependency(dependency)
    return verifiers
