"""Command-line entry point: ``python -m repro.analysis``.

Exit codes: 0 — clean (no new gating findings); 1 — new findings;
2 — usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.registry import all_rules
from repro.analysis.runner import run_analysis
from repro.errors import AnalysisError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based determinism and cache-coherence linter for the "
            "ElasticFlow reproduction (see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyse (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: analysis-baseline.json at repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--changed",
        metavar="GIT_REF",
        default=None,
        help=(
            "incremental mode: report findings only for modules changed "
            "since the git ref (plus their call-graph dependents); the "
            "whole program is still parsed and analysed"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--bench-out",
        type=Path,
        default=None,
        help="also write a JSON timing record (files, rules, seconds)",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_cls in all_rules():
        lines.append(
            f"{rule_cls.rule_id}  [{rule_cls.severity.value:7s}] "
            f"{rule_cls.title}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN

    try:
        report = run_analysis(
            args.paths or None,
            baseline_path=args.baseline,
            update_baseline=args.update_baseline,
            changed_ref=args.changed,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_human())

    if args.bench_out is not None:
        args.bench_out.write_text(
            json.dumps(
                {
                    "schema": 2,
                    "benchmark": "repro.analysis full-tree lint",
                    "files_analyzed": report.files_analyzed,
                    "rules_run": report.rules_run,
                    "duration_seconds": round(report.duration_seconds, 4),
                    "callgraph": report.callgraph,
                    "rule_seconds": report.rule_timings,
                    "budget_seconds": 10.0,
                    "within_budget": report.duration_seconds < 10.0,
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )

    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


if __name__ == "__main__":
    raise SystemExit(main())
