"""Per-file analysis context shared by every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import Suppression, parse_suppressions
from repro.errors import AnalysisError

__all__ = ["FileContext"]

#: Directive letting fixture files masquerade as scoped modules:
#: ``# lint-module: repro.core.something`` on any line.
_MODULE_DIRECTIVE = "# lint-module:"


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file.

    Attributes:
        path: Filesystem path of the file.
        display_path: Path used in findings (repo-relative when possible).
        module: Dotted module name (e.g. ``"repro.core.admission"``);
            overridable by a ``# lint-module:`` directive for fixtures.
        source: Raw file contents.
        lines: Source split into lines (1-based access via ``line(n)``).
        tree: Parsed AST.
        suppressions: Parsed ``# lint: disable=...`` comments by line.
    """

    path: Path
    display_path: str
    module: str
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def load(
        cls, path: Path, *, module: str | None = None, display_path: str | None = None
    ) -> "FileContext":
        """Parse one file, honouring its ``# lint-module:`` directive.

        Raises:
            AnalysisError: When the file cannot be read or parsed.
        """
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        lines = source.splitlines()
        if module is None:
            module = _module_of(path)
        for text in lines[:30]:
            stripped = text.strip()
            if stripped.startswith(_MODULE_DIRECTIVE):
                module = stripped[len(_MODULE_DIRECTIVE) :].strip()
                break
        return cls(
            path=path,
            display_path=display_path or str(path),
            module=module,
            source=source,
            lines=lines,
            tree=tree,
            suppressions=parse_suppressions(lines),
        )

    def line(self, number: int) -> str:
        """1-based source line (empty string past the end)."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module sits under any of the dotted prefixes."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a finding anchored at one AST node."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None) or line
        return Finding(
            path=self.display_path,
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
            severity=severity,
            end_line=end_line,
            snippet=self.line(line).strip(),
        )

    def suppression_for(self, finding: Finding) -> Suppression | None:
        """The suppression covering a finding, if any.

        A suppression applies on the finding's own line or the line
        directly above it (for lines too long to host a comment).
        """
        for line in (finding.line, finding.line - 1):
            suppression = self.suppressions.get(line)
            if suppression is not None and suppression.covers(finding.rule_id):
                return suppression
        return None


def _module_of(path: Path) -> str:
    """Dotted module name derived from the path's ``repro`` ancestry."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return path.stem
