"""Rule base class and the rule registry.

Every rule is a class decorated with :func:`register`.  Rules run in three
phases over the whole file set: a *collect* pass (whole-program facts, e.g.
which classes declare coherent fields), a *prepare* pass handed the
assembled :class:`repro.analysis.program.Program` (interprocedural rules
compute their findings here, against the call graph and effect
summaries), and a *check* pass that yields findings per file.  Rules
without cross-file state implement only ``check``.

Adding a rule (see ``docs/static-analysis.md``):

1. subclass :class:`Rule`, set ``rule_id``/``title``/``severity``/``scope``
   and write the defect description in the class docstring (it becomes the
   published catalog entry);
2. decorate with ``@register``;
3. add a positive and a negative fixture under ``tests/analysis_fixtures/``.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.program import Program

__all__ = ["Rule", "register", "all_rules", "get_rule", "walk_scope"]


class Rule:
    """One static-analysis rule.

    Class attributes:
        rule_id: Unique identifier, ``<FAMILY><NNN>`` (e.g. ``"DET001"``).
        title: Short human name shown in ``--list-rules``.
        severity: Default severity of the rule's findings.
        scope: Dotted module prefixes the rule applies to; empty means
            every analysed module.
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    scope: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs over one file (scope prefix match)."""
        if not self.scope:
            return True
        return ctx.in_package(*self.scope)

    def collect(self, ctx: FileContext) -> None:
        """Phase 1: gather whole-program facts.  Default: nothing."""

    def prepare(self, program: "Program") -> None:
        """Phase 2: whole-program analysis against the assembled
        :class:`~repro.analysis.program.Program`.  Interprocedural rules
        build the call graph / effect summaries here (lazily shared
        across rules) and stage their findings for ``check``.  Default:
        nothing."""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Phase 3: yield findings for one file."""
        raise NotImplementedError

    @classmethod
    def doc(cls) -> str:
        """The rule's published documentation (its class docstring)."""
        return (cls.__doc__ or "").strip()

    @classmethod
    def impl_fingerprint(cls) -> str:
        """Hash of the rule's source, stamped into baseline entries.

        Editing a rule changes its fingerprint, which invalidates every
        baseline suppression recorded for it — a stale baseline must be
        deliberately re-accepted against the new implementation, never
        silently carried over.
        """
        try:
            source = inspect.getsource(cls)
        except (OSError, TypeError):  # pragma: no cover - e.g. REPL classes
            source = cls.__qualname__
        return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise AnalysisError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise AnalysisError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, ordered by rule id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> type[Rule]:
    """Look up one rule class.

    Raises:
        AnalysisError: For an unknown rule id.
    """
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AnalysisError(
            f"unknown rule {rule_id!r}; known rules: {known}"
        ) from None


def _load_builtin_rules() -> None:
    """Import the rule modules so their ``@register`` calls run."""
    from repro.analysis import rules  # noqa: F401  (import for side effect)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class defs.

    Statement-level analyses (e.g. "does this statement perform a call")
    must not credit calls that only happen inside a nested ``def`` or
    ``lambda`` — those run later, if ever.
    """
    stack = [node]
    first = True
    while stack:
        current = stack.pop()
        if not first and isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        first = False
        yield current
        stack.extend(ast.iter_child_nodes(current))
