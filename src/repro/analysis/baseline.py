"""The committed findings baseline.

The baseline is the set of *accepted* findings: fingerprints of defects
that predate a rule (or are justified but not worth an inline comment).
``python -m repro.analysis`` fails only on findings **not** in the
baseline, so the gate blocks regressions without demanding a big-bang
cleanup when a rule is introduced.  The file is committed at the repo
root (``analysis-baseline.json``) and updated deliberately with
``--update-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Accepted-findings ledger keyed by fingerprint.

    Attributes:
        entries: fingerprint -> descriptive entry (rule, path, snippet),
            kept purely so humans can audit the file; matching uses only
            the fingerprint key.
        path: Where the baseline was loaded from (``None`` for empty).
    """

    entries: dict[str, dict[str, str]] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            AnalysisError: When the file exists but is not a valid
                baseline document.
        """
        if not path.exists():
            return cls(path=path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(document, dict) or "findings" not in document:
            raise AnalysisError(
                f"baseline {path} is not a baseline document "
                f"(missing 'findings' key)"
            )
        raw = document["findings"]
        if not isinstance(raw, dict):
            raise AnalysisError(f"baseline {path}: 'findings' must be an object")
        entries = {
            str(fingerprint): dict(meta) if isinstance(meta, dict) else {}
            for fingerprint, meta in raw.items()
        }
        return cls(entries=entries, path=path)

    def covers(self, finding: Finding) -> bool:
        """Whether a finding is already accepted."""
        return finding.fingerprint in self.entries

    def save(self, path: Path, findings: list[Finding]) -> None:
        """Write a fresh baseline accepting exactly ``findings``."""
        entries = {
            f.fingerprint: {
                "rule": f.rule_id,
                "path": f.path,
                "snippet": f.snippet,
            }
            for f in sorted(findings)
        }
        document = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Accepted static-analysis findings. Regenerate deliberately "
                "with: python -m repro.analysis --update-baseline"
            ),
            "findings": entries,
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
