"""The committed findings baseline.

The baseline is the set of *accepted* findings: fingerprints of defects
that predate a rule (or are justified but not worth an inline comment).
``python -m repro.analysis`` fails only on findings **not** in the
baseline, so the gate blocks regressions without demanding a big-bang
cleanup when a rule is introduced.  The file is committed at the repo
root (``analysis-baseline.json``) and updated deliberately with
``--update-baseline``.

Format v2 stamps every entry with the *implementation fingerprint* of the
rule that produced it (:meth:`repro.analysis.registry.Rule.impl_fingerprint`).
An entry only covers a finding while its rule's source is unchanged;
editing a rule invalidates its accepted findings, forcing a deliberate
re-acceptance instead of silently grandfathering them under the new
semantics.  v1 entries carry no fingerprint and are therefore treated as
stale on first contact with a v2 reader.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_FORMAT_VERSION = 2


@dataclass
class Baseline:
    """Accepted-findings ledger keyed by fingerprint.

    Attributes:
        entries: fingerprint -> descriptive entry (rule, path, snippet),
            kept purely so humans can audit the file; matching uses only
            the fingerprint key.
        path: Where the baseline was loaded from (``None`` for empty).
    """

    entries: dict[str, dict[str, str]] = field(default_factory=dict)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            AnalysisError: When the file exists but is not a valid
                baseline document.
        """
        if not path.exists():
            return cls(path=path)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(document, dict) or "findings" not in document:
            raise AnalysisError(
                f"baseline {path} is not a baseline document "
                f"(missing 'findings' key)"
            )
        raw = document["findings"]
        if not isinstance(raw, dict):
            raise AnalysisError(f"baseline {path}: 'findings' must be an object")
        entries = {
            str(fingerprint): dict(meta) if isinstance(meta, dict) else {}
            for fingerprint, meta in raw.items()
        }
        return cls(entries=entries, path=path)

    def covers(
        self, finding: Finding, rule_impls: dict[str, str] | None = None
    ) -> bool:
        """Whether a finding is already accepted.

        With ``rule_impls`` (rule id -> current implementation
        fingerprint), an entry only counts while it was recorded against
        the *same* rule implementation; entries written by an older rule
        (or by the v1 format, which stamped none) are stale and the
        finding resurfaces as new.
        """
        entry = self.entries.get(finding.fingerprint)
        if entry is None:
            return False
        if rule_impls is None:
            return True
        return entry.get("rule_impl") == rule_impls.get(finding.rule_id)

    def save(
        self,
        path: Path,
        findings: list[Finding],
        rule_impls: dict[str, str] | None = None,
    ) -> None:
        """Write a fresh baseline accepting exactly ``findings``."""
        rule_impls = rule_impls or {}
        entries = {
            f.fingerprint: {
                "rule": f.rule_id,
                "rule_impl": rule_impls.get(f.rule_id, ""),
                "path": f.path,
                "snippet": f.snippet,
            }
            for f in sorted(findings)
        }
        document = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Accepted static-analysis findings. Regenerate deliberately "
                "with: python -m repro.analysis --update-baseline"
            ),
            "findings": entries,
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
