"""Inline suppression parsing.

A finding can be silenced at its source line (or the line directly above)
with a justified suppression comment::

    rate = time.time()  # lint: disable=DET001 -- wall clock feeds logs only

The justification after ``--`` is mandatory: a suppression without one is
itself reported (rule SUP001), so every silenced finding carries its
reasoning in the diff that introduced it.  ``disable=all`` silences every
rule on the line (same justification requirement).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Suppression", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?|all)"
    r"(?:\s*--\s*(?P<reason>.*?))?\s*$"
)


@dataclass
class Suppression:
    """One ``# lint: disable=...`` comment.

    Attributes:
        line: 1-based line the comment sits on.
        rule_ids: Rules silenced (empty set with ``all_rules`` for ``all``).
        reason: Justification text after ``--`` (empty when missing).
        all_rules: Whether the comment silences every rule.
        used: Set by the runner when a finding actually matched.
    """

    line: int
    rule_ids: frozenset[str]
    reason: str
    all_rules: bool = False
    used: bool = field(default=False, compare=False)

    def covers(self, rule_id: str) -> bool:
        return self.all_rules or rule_id in self.rule_ids


def parse_suppressions(lines: list[str]) -> dict[int, Suppression]:
    """Extract suppressions from source lines, keyed by 1-based line."""
    out: dict[int, Suppression] = {}
    for index, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        raw = match.group("rules").strip()
        reason = (match.group("reason") or "").strip()
        if raw == "all":
            out[index] = Suppression(
                line=index, rule_ids=frozenset(), reason=reason, all_rules=True
            )
        else:
            rules = frozenset(
                part.strip().upper() for part in raw.split(",") if part.strip()
            )
            out[index] = Suppression(line=index, rule_ids=rules, reason=reason)
    return out
