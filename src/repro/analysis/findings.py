"""The findings model: what a rule reports and how it is identified.

A finding pins one defect to a ``file:line`` span.  Findings carry a
*fingerprint* — a stable hash of the rule, the module, and the normalised
source line — so the committed baseline keeps matching across unrelated
edits that merely shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How bad a finding is; ``ERROR`` findings gate the build."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source span.

    Attributes:
        path: Path of the offending file, repo-relative when possible.
        line: 1-based line of the violation.
        col: 0-based column of the violation.
        rule_id: Identifier of the rule that fired (e.g. ``"DET001"``).
        message: Human explanation of what is wrong and how to fix it.
        severity: Gate level; only :attr:`Severity.ERROR` fails the build.
        end_line: Last line of the span (defaults to ``line``).
        snippet: The stripped source line, for reports and fingerprints.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR
    end_line: int = 0
    snippet: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line *number*: the triple of rule,
        path, and normalised line text survives code motion.  Two
        identical offending lines in one file share a fingerprint, which
        errs on the forgiving side for baselines.
        """
        payload = "\x1f".join(
            (self.rule_id, self.path, " ".join(self.snippet.split()))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "severity": self.severity.value,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def format_human(self) -> str:
        """One-line ``path:line:col rule message`` rendering."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
