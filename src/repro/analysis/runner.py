"""Drives one analysis run: discover, collect, prepare, check, gate.

The runner is deliberately boring: enumerate files, run every registered
rule's collect phase, hand the assembled :class:`Program` to each rule's
prepare phase (interprocedural rules build the shared call graph /
effect summaries here), run every check phase, then partition findings
into suppressed / baselined / new.  All policy lives in the rules and in
the baseline file.

``changed_ref`` enables the incremental pre-commit mode: the full file
set is still parsed and the whole-program phases still run over
everything (an interprocedural finding in a changed module can be caused
by any file), but *findings* are reported only for modules that changed
relative to the git ref — or that transitively import a changed module.
"""

from __future__ import annotations

import subprocess
import time
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.program import Program
from repro.analysis.registry import Rule, all_rules
from repro.analysis.report import AnalysisReport
from repro.errors import AnalysisError

__all__ = [
    "run_analysis",
    "discover_files",
    "default_root",
    "find_baseline",
    "changed_modules",
]

#: Rule whose findings police the suppression comments themselves; they
#: must not be silenceable by the very comment they complain about.
_UNSUPPRESSABLE = {"SUP001"}


def default_root() -> Path:
    """The ``repro`` package directory — the default analysis target."""
    return Path(__file__).resolve().parents[1]


def discover_files(paths: list[Path] | None = None) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        AnalysisError: When an explicit path does not exist.
    """
    if not paths:
        paths = [default_root()]
    files: set[Path] = set()
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            files.update(p for p in path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def find_baseline(explicit: Path | None = None) -> Path:
    """Locate the baseline file.

    Order: an explicit ``--baseline`` path, ``analysis-baseline.json`` in
    the current directory, then next to the repo root inferred from the
    package location (``src/repro`` -> repo root).  Falls back to the
    cwd path (which :meth:`Baseline.load` treats as empty if absent).
    """
    if explicit is not None:
        return explicit
    candidates = [
        Path.cwd() / DEFAULT_BASELINE_NAME,
        default_root().parents[1] / DEFAULT_BASELINE_NAME,
    ]
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return candidates[0]


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def changed_modules(ref: str, contexts: list[FileContext]) -> set[str]:
    """Modules of the analysed set touched since ``ref`` (per git diff)."""
    repo_root = default_root().parents[1]
    try:
        result = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        raise AnalysisError(
            f"cannot diff against {ref!r}: {detail.strip()}"
        ) from exc
    changed_paths = {
        (repo_root / line.strip()).resolve()
        for line in result.stdout.splitlines()
        if line.strip().endswith(".py")
    }
    return {
        ctx.module
        for ctx in contexts
        if Path(ctx.path).resolve() in changed_paths
    }


def _dependents_closure(
    changed: set[str], module_deps: dict[str, set[str]]
) -> set[str]:
    """Changed modules plus everything that transitively imports them."""
    affected = set(changed)
    grew = True
    while grew:
        grew = False
        for module, deps in module_deps.items():
            if module in affected:
                continue
            for dep in deps:
                if any(
                    dep == hit or dep.startswith(hit + ".") for hit in affected
                ):
                    affected.add(module)
                    grew = True
                    break
    return affected


def run_analysis(
    paths: list[Path] | None = None,
    *,
    baseline_path: Path | None = None,
    update_baseline: bool = False,
    changed_ref: str | None = None,
) -> AnalysisReport:
    """Run every registered rule over the file set.

    Args:
        paths: Files/directories to analyse; defaults to the installed
            ``repro`` package tree.
        baseline_path: Explicit baseline file (default: see
            :func:`find_baseline`).
        update_baseline: Accept all current findings into the baseline
            instead of reporting them as new.
        changed_ref: Git ref for incremental mode — findings are limited
            to modules changed since the ref plus their call-graph
            dependents.  The full program is still parsed and the
            whole-program phases still run over everything.

    Returns:
        The populated :class:`AnalysisReport`.
    """
    start = time.perf_counter()
    if update_baseline and changed_ref is not None:
        raise AnalysisError(
            "--update-baseline cannot be combined with --changed: a "
            "filtered run must never rewrite the full baseline"
        )

    from repro.analysis.rules.cache_coherence import reset_declarations

    reset_declarations()

    rules: list[Rule] = [rule_cls() for rule_cls in all_rules()]
    rule_impls = {
        rule_cls.rule_id: rule_cls.impl_fingerprint()
        for rule_cls in all_rules()
    }
    files = discover_files(paths)
    contexts = [
        FileContext.load(path, display_path=_display_path(path))
        for path in files
    ]
    program = Program(contexts)
    timings: dict[str, float] = {rule.rule_id: 0.0 for rule in rules}

    for rule in rules:
        phase_start = time.perf_counter()
        for ctx in contexts:
            if rule.applies_to(ctx):
                rule.collect(ctx)
        timings[rule.rule_id] += time.perf_counter() - phase_start

    for rule in rules:
        phase_start = time.perf_counter()
        engine_before = (
            program.callgraph_build_seconds + program.effects_build_seconds
        )
        rule.prepare(program)
        engine_delta = (
            program.callgraph_build_seconds
            + program.effects_build_seconds
            - engine_before
        )
        # The first interprocedural rule triggers the lazy engine build;
        # charge that to the separately reported build time, not the rule.
        timings[rule.rule_id] += (
            time.perf_counter() - phase_start - engine_delta
        )

    affected: set[str] | None = None
    if changed_ref is not None:
        changed = changed_modules(changed_ref, contexts)
        affected = _dependents_closure(
            changed, program.callgraph.module_deps
        )

    resolved_baseline = find_baseline(baseline_path)
    baseline = Baseline.load(resolved_baseline)

    new: list[Finding] = []
    baselined: list[Finding] = []
    suppressed: list[Finding] = []
    for ctx in contexts:
        if affected is not None and ctx.module not in affected:
            continue
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            phase_start = time.perf_counter()
            found = list(rule.check(ctx))
            timings[rule.rule_id] += time.perf_counter() - phase_start
            for finding in found:
                if finding.rule_id not in _UNSUPPRESSABLE:
                    suppression = ctx.suppression_for(finding)
                    if suppression is not None and suppression.reason:
                        suppression.used = True
                        suppressed.append(finding)
                        continue
                if baseline.covers(finding, rule_impls):
                    baselined.append(finding)
                    continue
                new.append(finding)

    if update_baseline:
        baseline.save(resolved_baseline, new + baselined, rule_impls)
        baselined = sorted(baselined + new)
        new = []

    return AnalysisReport(
        findings=sorted(new),
        baselined=sorted(baselined),
        suppressed=sorted(suppressed),
        files_analyzed=len(contexts),
        rules_run=len(rules),
        duration_seconds=time.perf_counter() - start,
        rule_timings={
            rule_id: round(seconds, 4)
            for rule_id, seconds in sorted(timings.items())
        },
        callgraph=program.stats(),
        changed_scope=sorted(affected) if affected is not None else None,
    )
