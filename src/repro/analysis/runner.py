"""Drives one analysis run: discover, collect, check, gate.

The runner is deliberately boring: enumerate files, run every registered
rule's collect phase, run every check phase, then partition findings into
suppressed / baselined / new.  All policy lives in the rules and in the
baseline file.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules
from repro.analysis.report import AnalysisReport
from repro.errors import AnalysisError

__all__ = ["run_analysis", "discover_files", "default_root", "find_baseline"]

#: Rule whose findings police the suppression comments themselves; they
#: must not be silenceable by the very comment they complain about.
_UNSUPPRESSABLE = {"SUP001"}


def default_root() -> Path:
    """The ``repro`` package directory — the default analysis target."""
    return Path(__file__).resolve().parents[1]


def discover_files(paths: list[Path] | None = None) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        AnalysisError: When an explicit path does not exist.
    """
    if not paths:
        paths = [default_root()]
    files: set[Path] = set()
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            files.update(p for p in path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def find_baseline(explicit: Path | None = None) -> Path:
    """Locate the baseline file.

    Order: an explicit ``--baseline`` path, ``analysis-baseline.json`` in
    the current directory, then next to the repo root inferred from the
    package location (``src/repro`` -> repo root).  Falls back to the
    cwd path (which :meth:`Baseline.load` treats as empty if absent).
    """
    if explicit is not None:
        return explicit
    candidates = [
        Path.cwd() / DEFAULT_BASELINE_NAME,
        default_root().parents[1] / DEFAULT_BASELINE_NAME,
    ]
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return candidates[0]


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def run_analysis(
    paths: list[Path] | None = None,
    *,
    baseline_path: Path | None = None,
    update_baseline: bool = False,
) -> AnalysisReport:
    """Run every registered rule over the file set.

    Args:
        paths: Files/directories to analyse; defaults to the installed
            ``repro`` package tree.
        baseline_path: Explicit baseline file (default: see
            :func:`find_baseline`).
        update_baseline: Accept all current findings into the baseline
            instead of reporting them as new.

    Returns:
        The populated :class:`AnalysisReport`.
    """
    start = time.perf_counter()

    from repro.analysis.rules.cache_coherence import reset_declarations

    reset_declarations()

    rules: list[Rule] = [rule_cls() for rule_cls in all_rules()]
    files = discover_files(paths)
    contexts = [
        FileContext.load(path, display_path=_display_path(path))
        for path in files
    ]

    for rule in rules:
        for ctx in contexts:
            if rule.applies_to(ctx):
                rule.collect(ctx)

    resolved_baseline = find_baseline(baseline_path)
    baseline = Baseline.load(resolved_baseline)

    new: list[Finding] = []
    baselined: list[Finding] = []
    suppressed: list[Finding] = []
    for ctx in contexts:
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if finding.rule_id not in _UNSUPPRESSABLE:
                    suppression = ctx.suppression_for(finding)
                    if suppression is not None and suppression.reason:
                        suppression.used = True
                        suppressed.append(finding)
                        continue
                if baseline.covers(finding):
                    baselined.append(finding)
                    continue
                new.append(finding)

    if update_baseline:
        baseline.save(resolved_baseline, new + baselined)
        baselined = sorted(baselined + new)
        new = []

    return AnalysisReport(
        findings=sorted(new),
        baselined=sorted(baselined),
        suppressed=sorted(suppressed),
        files_analyzed=len(contexts),
        rules_run=len(rules),
        duration_seconds=time.perf_counter() - start,
    )
