"""Effect-propagation fixpoints over the call graph.

Each function gets a *summary* — which of its parameters it writes in
place (directly or through any callee), which coherent fields it mutates
transitively, whether it creates or returns ambient (unseeded)
randomness — computed to a fixpoint over the
:class:`repro.analysis.callgraph.CallGraph`.  The interprocedural rules
(IP001–IP005) consume these summaries; the hypothesis test in
``tests/test_analysis_callgraph.py`` checks them against a brute-force
graph interpreter on randomly generated module sets.

Everything here is a *may* analysis: control flow inside a function is
ignored (a write on any path counts), and ambiguous receivers propagate
through every candidate callee.  That direction errs toward reporting —
the right bias for contract checking, where a silent miss is a silently
corrupted cache.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import MUTATING_METHODS, dotted
from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo, bind_args
from repro.analysis.registry import walk_scope

__all__ = [
    "EffectAnalysis",
    "FunctionEffects",
    "MutationEvent",
    "alias_roots",
    "is_ambient_rng_call",
    "mutation_events",
]


@dataclass
class MutationEvent:
    """One in-place write through a tracked local name."""

    name: str
    node: ast.AST
    line: int
    kind: str  # "subscript" | "aug" | "method" | "out" | "del" | "unfreeze"


def mutation_events(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[MutationEvent]:
    """Every in-place mutation of a bare local name in one function body.

    Covers subscript/slice stores (``a[...] = v``), augmented assignment
    (``a += v``, ``a[i] += v``), in-place mutating method calls
    (``a.sort()``), numpy ``out=`` targets (``np.add(x, y, out=a)``),
    ``del a[...]``, and re-enabling writes on a frozen array
    (``a.flags.writeable = True``).
    """
    events: list[MutationEvent] = []

    def target_name(target: ast.AST) -> tuple[str, str] | None:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id, "subscript"
        if isinstance(target, ast.Name):
            return target.id, "aug"
        if isinstance(target, ast.Attribute):
            path = dotted(target)
            if path is not None and path.endswith(".flags.writeable"):
                return path.split(".")[0], "unfreeze"
        return None

    for node in walk_scope(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                found = target_name(target)
                if found is None or found[1] == "aug":
                    continue
                if found[1] == "unfreeze" and not (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is True
                ):
                    # ``a.flags.writeable = False`` is the *freeze* — the
                    # protective act, not a mutation.
                    continue
                events.append(
                    MutationEvent(found[0], node, node.lineno, found[1])
                )
        elif isinstance(node, ast.AugAssign):
            found = target_name(node.target)
            if found is not None:
                events.append(
                    MutationEvent(found[0], node, node.lineno, found[1])
                )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    events.append(
                        MutationEvent(target.value.id, node, node.lineno, "del")
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in MUTATING_METHODS
            ):
                events.append(
                    MutationEvent(func.value.id, node, node.lineno, "method")
                )
            for keyword in node.keywords:
                if keyword.arg == "out" and isinstance(keyword.value, ast.Name):
                    events.append(
                        MutationEvent(
                            keyword.value.id, node, node.lineno, "out"
                        )
                    )
    return events


def alias_roots(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef,
    seeds: set[str],
) -> dict[str, set[str]]:
    """Map each local name to the seed names it may alias.

    One ordered textual pass: ``v = s`` and ``v = s[...]`` (a numpy view)
    extend an alias chain; rebinding a name to anything else resets it.
    Seeds alias themselves.  Control flow is ignored (may-alias).
    """
    roots: dict[str, set[str]] = {name: {name} for name in seeds}

    def roots_of(expr: ast.AST) -> set[str]:
        if isinstance(expr, ast.Name):
            return set(roots.get(expr.id, ()))
        if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
            return set(roots.get(expr.value.id, ()))
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            # ``s.view()`` / ``s.reshape(...)`` share the buffer.
            if expr.func.attr in ("view", "reshape", "ravel", "squeeze"):
                if isinstance(expr.func.value, ast.Name):
                    return set(roots.get(expr.func.value.id, ()))
        return set()

    assignments = [
        node
        for node in walk_scope(func_node)
        if isinstance(node, ast.Assign) and len(node.targets) == 1
    ]
    for node in sorted(assignments, key=lambda n: n.lineno):
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        aliased = roots_of(node.value)
        if target.id in seeds:
            aliased.add(target.id)
        if aliased:
            roots[target.id] = aliased
        else:
            roots.pop(target.id, None)
    return roots


def is_ambient_rng_call(node: ast.Call) -> bool:
    """Whether a call creates an *unseeded* random generator."""
    path = dotted(node.func)
    if path is None:
        return False
    parts = path.split(".")
    tail = parts[-1]
    if tail == "default_rng":
        return not node.args and not node.keywords
    if tail == "RandomState" and "random" in parts[:-1]:
        return not node.args and not node.keywords
    if tail == "Random" and parts[0] == "random":
        return not node.args and not node.keywords
    return False


@dataclass
class FunctionEffects:
    """The inferred mutation/escape summary of one function."""

    qualname: str
    #: Parameters written in place, directly or through any callee.
    writes_params: set[str] = field(default_factory=set)
    #: Parameters written by this function's own body.
    direct_writes_params: set[str] = field(default_factory=set)
    #: ``(class, field)`` coherent fields mutated transitively.
    mutated_fields: set[tuple[str, str]] = field(default_factory=set)
    #: Coherent fields this body mutates textually (``self.<f>`` writes).
    direct_mutated_fields: set[tuple[str, str]] = field(default_factory=set)
    #: Whether the return value may be an ambient (unseeded) generator.
    returns_ambient_rng: bool = False
    #: Local names bound to ambient generators in this body.
    ambient_names: set[str] = field(default_factory=set)
    #: Parameters that may receive an ambient generator from a caller.
    tainted_params: set[str] = field(default_factory=set)
    #: Local name -> parameter seeds it may alias (for write attribution).
    param_aliases: dict[str, set[str]] = field(default_factory=dict)


class EffectAnalysis:
    """Whole-program effect summaries, computed to a fixpoint."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.effects: dict[str, FunctionEffects] = {}
        self._site_of_node: dict[int, CallSite] = {}
        for sites in graph.edges.values():
            for site in sites:
                self._site_of_node[id(site.node)] = site
        for qualname, info in graph.functions.items():
            self.effects[qualname] = self._direct_facts(info)
        self._fix_writes_params()
        self._fix_mutated_fields()
        self._fix_ambient_returns()
        self._fix_tainted_params()

    def summary(self, qualname: str) -> FunctionEffects | None:
        return self.effects.get(qualname)

    # -- direct (intraprocedural) facts ------------------------------------

    def _direct_facts(self, info: FunctionInfo) -> FunctionEffects:
        fx = FunctionEffects(qualname=info.qualname)
        params = set(info.params)
        fx.param_aliases = alias_roots(info.node, params)
        for event in mutation_events(info.node):
            for root in fx.param_aliases.get(event.name, ()):
                if root in params:
                    fx.direct_writes_params.add(root)
        fx.writes_params = set(fx.direct_writes_params)

        if info.class_name is not None:
            owner = self.graph.classes.get(info.class_name)
            if owner is not None and owner.coherent_fields:
                for field_name, node in _self_field_mutations(info.node):
                    if field_name in owner.coherent_fields:
                        fx.direct_mutated_fields.add(
                            (info.class_name, field_name)
                        )
        fx.mutated_fields = set(fx.direct_mutated_fields)

        for node in walk_scope(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if isinstance(node.value, ast.Call) and is_ambient_rng_call(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        fx.ambient_names.add(target.id)
        for node in walk_scope(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._expr_may_be_ambient(node.value, fx):
                    fx.returns_ambient_rng = True
        return fx

    # -- fixpoints ---------------------------------------------------------

    def _each_binding(self):
        """Yield ``(caller_fx, callee_fx, param, expr)`` for internal edges."""
        for caller, sites in self.graph.edges.items():
            caller_fx = self.effects.get(caller)
            if caller_fx is None:
                continue
            for site in sites:
                method_call = isinstance(site.node.func, ast.Attribute)
                for callee in site.callees:
                    callee_info = self.graph.functions.get(callee)
                    if callee_info is None:
                        continue
                    for param, expr in bind_args(
                        site.node, callee_info, method_call=method_call
                    ):
                        yield caller_fx, self.effects[callee], param, expr, site

    def _fix_writes_params(self) -> None:
        changed = True
        while changed:
            changed = False
            for caller_fx, callee_fx, param, expr, _site in self._each_binding():
                if param not in callee_fx.writes_params:
                    continue
                if not isinstance(expr, ast.Name):
                    continue
                for root in caller_fx.param_aliases.get(expr.id, ()):
                    if (
                        root not in caller_fx.writes_params
                        and root in caller_fx.param_aliases
                        and root in set(
                            self.graph.functions[caller_fx.qualname].params
                        )
                    ):
                        caller_fx.writes_params.add(root)
                        changed = True

    def _fix_mutated_fields(self) -> None:
        changed = True
        while changed:
            changed = False
            for caller, sites in self.graph.edges.items():
                caller_fx = self.effects.get(caller)
                if caller_fx is None:
                    continue
                for site in sites:
                    for callee in site.callees:
                        callee_fx = self.effects.get(callee)
                        if callee_fx is None:
                            continue
                        missing = (
                            callee_fx.mutated_fields - caller_fx.mutated_fields
                        )
                        if missing:
                            caller_fx.mutated_fields |= missing
                            changed = True

    def _fix_ambient_returns(self) -> None:
        changed = True
        while changed:
            changed = False
            for qualname, fx in self.effects.items():
                if fx.returns_ambient_rng:
                    continue
                info = self.graph.functions[qualname]
                for node in walk_scope(info.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        if self._expr_may_be_ambient(node.value, fx):
                            fx.returns_ambient_rng = True
                            changed = True
                            break

    def _fix_tainted_params(self) -> None:
        changed = True
        while changed:
            changed = False
            for caller_fx, callee_fx, param, expr, _site in self._each_binding():
                if param in callee_fx.tainted_params:
                    continue
                if self._expr_may_be_ambient(expr, caller_fx):
                    callee_fx.tainted_params.add(param)
                    changed = True

    def _expr_may_be_ambient(
        self, expr: ast.AST, fx: FunctionEffects
    ) -> bool:
        """Whether an expression may evaluate to an ambient generator."""
        if isinstance(expr, ast.Name):
            return expr.id in fx.ambient_names or expr.id in fx.tainted_params
        if isinstance(expr, ast.Call):
            if is_ambient_rng_call(expr):
                return True
            site = self._site_of_node.get(id(expr))
            if site is not None:
                return any(
                    self.effects[callee].returns_ambient_rng
                    for callee in site.callees
                    if callee in self.effects
                )
        if isinstance(expr, ast.IfExp):
            return self._expr_may_be_ambient(
                expr.body, fx
            ) or self._expr_may_be_ambient(expr.orelse, fx)
        if isinstance(expr, ast.BoolOp):
            return any(
                self._expr_may_be_ambient(value, fx) for value in expr.values
            )
        return False

    # -- queries used by the IP rules --------------------------------------

    def reaches_call(
        self, qualname: str, target_names: set[str], *, max_depth: int = 8
    ) -> bool:
        """Whether a function transitively performs a call named in
        ``target_names`` (bare last-component match), following internal
        edges up to ``max_depth`` frames."""
        seen: set[str] = set()
        frontier = [qualname]
        for _ in range(max_depth):
            next_frontier: list[str] = []
            for current in frontier:
                if current in seen:
                    continue
                seen.add(current)
                for site in self.graph.sites_in(current):
                    if site.name.split(".")[-1] in target_names:
                        return True
                    next_frontier.extend(
                        callee
                        for callee in site.callees
                        if callee not in seen
                    )
            if not next_frontier:
                return False
            frontier = next_frontier
        return False

    def ambient_decision_crossings(
        self, decision_scope: tuple[str, ...]
    ) -> list[tuple[CallSite, str, str]]:
        """Call sites where ambient randomness enters a decision module.

        Returns ``(site, callee_qualname, param)`` triples where the
        caller sits *outside* the decision scope (inside, DET001 already
        bans the ambient source itself) and the callee inside it.
        """

        def in_scope(module: str) -> bool:
            return any(
                module == prefix or module.startswith(prefix + ".")
                for prefix in decision_scope
            )

        crossings: list[tuple[CallSite, str, str]] = []
        for caller_fx, callee_fx, param, expr, site in self._each_binding():
            caller_info = self.graph.functions.get(caller_fx.qualname)
            callee_info = self.graph.functions.get(callee_fx.qualname)
            if caller_info is None or callee_info is None:
                continue
            if in_scope(caller_info.module) or not in_scope(callee_info.module):
                continue
            if self._expr_may_be_ambient(expr, caller_fx):
                crossings.append((site, callee_fx.qualname, param))
        return crossings


def _self_field_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
):
    """``(field, node)`` for each textual ``self.<field>`` mutation."""
    for node in walk_scope(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                inner = node.func.value
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    yield inner.attr, node
            continue
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self":
                    yield target.attr, target
            elif isinstance(target, ast.Subscript):
                inner = target.value
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    yield inner.attr, target
