"""Determinism rules (DET).

The scheduler's correctness contract (see ``docs/performance.md``) requires
byte-identical decisions across runs and across the memoisation escape
hatch.  Wall-clock reads, unseeded RNG, and hash-ordered iteration are the
three ways that contract silently dies; these rules ban them from the
decision-making packages.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["NondeterministicCallRule", "UnorderedIterationRule"]

#: Packages whose code makes or replays scheduling decisions.
_DECISION_SCOPE = ("repro.core", "repro.sim", "repro.perf", "repro.baselines")

#: Dotted call paths that read ambient nondeterministic state.  The perf
#: harness's ``time.perf_counter`` is deliberately absent: measuring how
#: long a decision took is fine, feeding a clock *into* a decision is not.
_FORBIDDEN_CALLS: dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "uuid.uuid1": "nondeterministic id",
    "uuid.uuid4": "nondeterministic id",
}

#: ``random`` module functions that touch the global (unseeded) RNG.
_RANDOM_GLOBALS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "seed",
}

#: ``numpy.random`` module-level functions backed by the global RNG state.
_NUMPY_RANDOM_GLOBALS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "lognormal", "poisson", "exponential", "beta", "gamma", "binomial",
    "seed", "standard_normal", "bytes",
}


def _dotted(node: ast.AST) -> str | None:
    """Best-effort dotted path of a call target (``a.b.c`` -> ``"a.b.c"``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class NondeterministicCallRule(Rule):
    """DET001 — no ambient nondeterminism in scheduling decisions.

    Inside ``repro.core``, ``repro.sim``, ``repro.perf`` and
    ``repro.baselines``, code must not call ``time.time`` (or any
    wall-clock/monotonic read), ``datetime.now``-style constructors,
    ``uuid.uuid1``/``uuid4``, the global ``random`` module functions, the
    module-level ``numpy.random`` functions (global RNG state), or
    ``numpy.random.default_rng()`` without an explicit seed.  Simulation
    time comes from the event engine; randomness must be threaded through
    an explicitly seeded ``numpy.random.Generator``.
    """

    rule_id = "DET001"
    title = "ambient nondeterminism in a decision path"
    severity = Severity.ERROR
    scope = _DECISION_SCOPE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            message = self._offence(dotted, node)
            if message is not None:
                yield ctx.finding(node, self.rule_id, message)

    def _offence(self, dotted: str, node: ast.Call) -> str | None:
        tail2 = ".".join(dotted.split(".")[-2:])
        if tail2 in _FORBIDDEN_CALLS:
            kind = _FORBIDDEN_CALLS[tail2]
            return (
                f"{kind} `{dotted}(...)` in a decision path; use simulation "
                f"time / deterministic ids instead"
            )
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "random" and parts[1] in _RANDOM_GLOBALS:
            return (
                f"global-RNG call `{dotted}(...)`; thread an explicitly "
                f"seeded numpy.random.Generator instead"
            )
        if (
            len(parts) >= 2
            and parts[-2] == "random"
            and parts[0] in ("np", "numpy")
            and parts[-1] in _NUMPY_RANDOM_GLOBALS
        ):
            return (
                f"numpy global-RNG call `{dotted}(...)`; thread an "
                f"explicitly seeded numpy.random.Generator instead"
            )
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            return (
                "`default_rng()` without a seed is entropy-seeded; pass an "
                "explicit seed or accept a Generator from the caller"
            )
        return None


#: Consumers whose result depends on element *order* — feeding them a set
#: bakes hash order into a decision.
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "sum", "enumerate", "iter"}
#: Consumers that are order-insensitive and therefore safe on sets.
_ORDER_FREE_CONSUMERS = {
    "len", "min", "max", "any", "all", "sorted", "set", "frozenset", "bool",
}


class _SetTracker(ast.NodeVisitor):
    """Single-scope inference of which local names are set-typed."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes track their own names

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.set_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _annotation_is_set(node.annotation):
            self.set_names.add(node.target.id)
        self.generic_visit(node)


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text.startswith("set[") or text.startswith("frozenset[")
    return False


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    """Whether an expression is statically known to produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra produces sets; only claim it when a side is known.
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "intersection", "union", "difference", "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, set_names)
    return False


@register
class UnorderedIterationRule(Rule):
    """DET002 — no hash-ordered iteration feeding scheduling decisions.

    Inside the decision packages, ``for`` loops, comprehensions, and
    order-sensitive consumers (``list``/``tuple``/``sum``/``enumerate``)
    must not iterate a set-typed expression directly: set iteration order
    follows the hash seed, not the data.  Wrap the set in ``sorted(...)``
    (order-free reductions — ``len``/``min``/``max``/``any``/``all`` — and
    membership tests are fine).  Dicts keep insertion order and are exempt;
    what is banned is the *set*, whose order no code controls.
    """

    rule_id = "DET002"
    title = "hash-ordered set iteration in a decision path"
    severity = Severity.ERROR
    scope = _DECISION_SCOPE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for scope_node in self._scopes(ctx.tree):
            tracker = _SetTracker()
            for stmt in getattr(scope_node, "body", []):
                tracker.visit(stmt)
            yield from self._check_scope(ctx, scope_node, tracker.set_names)

    def _scopes(self, tree: ast.Module) -> list[ast.AST]:
        scopes: list[ast.AST] = [tree]
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        return scopes

    def _check_scope(
        self, ctx: FileContext, scope_node: ast.AST, set_names: set[str]
    ) -> Iterable[Finding]:
        from repro.analysis.registry import walk_scope

        for node in walk_scope(scope_node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, set_names):
                    yield ctx.finding(
                        node.iter,
                        self.rule_id,
                        "iterating a set in a decision path bakes hash order "
                        "into the outcome; wrap it in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter, set_names):
                        yield ctx.finding(
                            generator.iter,
                            self.rule_id,
                            "comprehension over a set in a decision path; "
                            "wrap the set in sorted(...)",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                name = node.func.id
                if (
                    name in _ORDER_SENSITIVE_CONSUMERS
                    and name not in _ORDER_FREE_CONSUMERS
                    and node.args
                    and _is_set_expr(node.args[0], set_names)
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"`{name}(...)` over a set is hash-ordered; wrap the "
                        f"set in sorted(...) first",
                    )
