"""Interprocedural rules (IP) — contracts checked across function lines.

The CC family verifies coherence declarations *locally*: a method that
textually mutates ``self._field`` must declare it and discharge the
invalidation hook.  What the local view cannot see is everything the
cache stack now leans on: a helper that mutates through a *call* to a
declared mutator, a ``trusted=True`` shared plan array that some alias
scribbles on three frames later, an escape hatch nothing can reach, an
unseeded generator smuggled across a module boundary, or ``verified``
state that is read without ever being re-proved.  These rules consume
the whole-program view (:mod:`repro.analysis.callgraph` /
:mod:`repro.analysis.effects`) built in the *prepare* phase and stage
findings per file for the *check* phase.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from pathlib import Path

from repro.analysis.astutil import (
    CONSTRUCTORS,
    DECISION_SCOPE,
    VERIFIED,
    dep_kind,
    dep_verifiers,
    dotted,
)
from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo, bind_args
from repro.analysis.context import FileContext
from repro.analysis.effects import alias_roots, mutation_events
from repro.analysis.findings import Finding, Severity
from repro.analysis.program import Program
from repro.analysis.registry import Rule, register, walk_scope

__all__ = [
    "UndeclaredTransitiveMutationRule",
    "SharedPlanAliasMutationRule",
    "DeadEscapeHatchRule",
    "AmbientRngCrossingRule",
    "UnprovenVerifiedReadRule",
]

#: Call names whose arguments are adopted by reference into a cache.
_ADOPTING_APIS = ("set_plan", "load_plans")

#: ndarray methods returning a view over the same buffer.
_VIEW_METHODS = ("view", "reshape", "ravel", "squeeze")


class _StagedRule(Rule):
    """Base for IP rules: compute in ``prepare``, emit in ``check``."""

    def __init__(self) -> None:
        self._staged: dict[str, list[Finding]] = {}
        self._seen: set[tuple[str, int, int, str]] = set()

    def _stage(
        self,
        program: Program,
        path: str,
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> None:
        ctx = program.context_by_path.get(path)
        if ctx is None:  # pragma: no cover - engine paths come from contexts
            return
        key = (
            path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self._staged.setdefault(path, []).append(
            ctx.finding(
                node, self.rule_id, message, severity=severity or self.severity
            )
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._staged.get(str(ctx.path), ())


@register
class UndeclaredTransitiveMutationRule(_StagedRule):
    """IP001: calling a declared mutator is itself a mutation.

    A function that calls a ``@mutates``-declared method on a
    ``@coherent`` object changes that object's coherent state just as
    surely as a textual ``self._field[...] = ...`` — but the CC rules
    cannot see it.  The caller must own up: declare
    ``@mutates("Class._field")`` (bare ``@mutates("_field")`` when it is
    a method of the same class), be a registered ``@invalidates``
    provider of the field's dependency, or be the owning class's
    constructor.  Dotted declarations are *terminal* — they document the
    transitive mutation without creating a fresh obligation in their own
    callers, so the chain does not cascade to the CLI.  ``frozen`` and
    ``verified`` dependencies carry no invalidation obligation and are
    exempt.
    """

    rule_id = "IP001"
    title = "transitive coherent-field mutation lacks a declaration"
    severity = Severity.ERROR

    def prepare(self, program: Program) -> None:
        graph = program.callgraph
        for caller_qual, sites in graph.edges.items():
            caller = graph.functions.get(caller_qual)
            for site in sites:
                if len(site.callees) != 1:
                    # Ambiguous (all-candidates) resolution: creating an
                    # obligation from a guess would drown real findings.
                    continue
                callee = graph.functions.get(site.callees[0])
                if callee is None or callee.class_name is None:
                    continue
                if callee.qualname == caller_qual:
                    continue
                owner = graph.classes.get(callee.class_name)
                if owner is None:
                    continue
                for field_name in callee.mutates:
                    if "." in field_name:
                        continue  # dotted declarations are terminal
                    dependency = owner.coherent_fields.get(field_name)
                    if dependency is None or dep_kind(dependency) != "hook":
                        continue
                    if dependency in callee.invalidates:
                        continue  # the callee invalidates as it mutates
                    if caller is not None and _discharges(
                        caller, owner.name, field_name, dependency
                    ):
                        continue
                    self._stage(
                        program,
                        site.path,
                        site.node,
                        f"call to {callee.class_name}.{callee.name}() mutates "
                        f"coherent field '{field_name}' (dependency "
                        f"'{dependency}'); declare "
                        f'@mutates("{owner.name}.{field_name}") on the '
                        f"caller or route through an @invalidates provider",
                    )


def _discharges(
    caller: FunctionInfo, owner: str, field_name: str, dependency: str
) -> bool:
    """Whether a caller already accounts for the transitive mutation."""
    if dependency in caller.invalidates:
        return True
    if f"{owner}.{field_name}" in caller.mutates:
        return True
    if caller.class_name == owner:
        if field_name in caller.mutates or caller.name in CONSTRUCTORS:
            return True
    return False


@register
class SharedPlanAliasMutationRule(_StagedRule):
    """IP002: arrays shared by reference must stay frozen — on every alias.

    ``Ledger.set_plan(..., trusted=True)``, ``Ledger.load_plans`` and
    ``WarmRowBatch.hint_row`` hand out (or take in) arrays *by
    reference*: the caller's local name, every view over it, and every
    callee it escapes to all address the adopted buffer.  Digest checks
    cannot catch a write through such an alias — the ledger version
    never ticks.  This rule tracks each share site's alias set (views,
    slices, plain rebinding) through the function body and flags any
    in-place mutation after the share, including indirectly via a callee
    whose effect summary writes the bound parameter.  It also checks the
    adopting API itself: an implementation that takes arrays by
    reference without marking them read-only has no defence at all.
    """

    rule_id = "IP002"
    title = "shared plan array mutated (or never frozen) after adoption"
    severity = Severity.ERROR

    def prepare(self, program: Program) -> None:
        graph = program.callgraph
        effects = program.effects
        for qualname, info in graph.functions.items():
            shares: list[tuple[str, int, str]] = []
            for site in graph.sites_in(qualname):
                tail = site.name.split(".")[-1]
                if tail == "set_plan" and _is_trusted(site.node):
                    shares.extend(
                        (arg.id, site.line, "set_plan(..., trusted=True)")
                        for arg in site.node.args
                        if isinstance(arg, ast.Name)
                    )
                    self._check_freeze_contract(program, graph, site)
                elif tail == "load_plans":
                    shares.extend(
                        (arg.id, site.line, "load_plans(...)")
                        for arg in site.node.args
                        if isinstance(arg, ast.Name)
                    )
                    self._check_freeze_contract(program, graph, site)
            for sub in walk_scope(info.node):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Attribute)
                    and sub.value.func.attr == "hint_row"
                ):
                    shares.append(
                        (sub.targets[0].id, sub.lineno, "hint_row(...)")
                    )
            for name, line, label in shares:
                self._check_share(
                    program, graph, effects, info, name, line, label
                )

    def _check_share(
        self,
        program: Program,
        graph: CallGraph,
        effects,
        info: FunctionInfo,
        name: str,
        line: int,
        label: str,
    ) -> None:
        roots = alias_roots(info.node, {name})
        aliases = {m for m, seeds in roots.items() if name in seeds}
        rebinds = _rebind_lines(info.node, aliases)
        for event in mutation_events(info.node):
            if event.name not in aliases or event.line <= line:
                continue
            if _rebound_between(rebinds, event.name, line, event.line):
                continue
            self._stage(
                program,
                info.path,
                event.node,
                f"in-place write through '{event.name}', an alias of "
                f"'{name}' shared by reference via {label} on line {line}; "
                f"the adopted buffer must stay frozen (copy before "
                f"mutating)",
            )
        for site in graph.sites_in(info.qualname):
            if site.line <= line:
                continue
            method_call = isinstance(site.node.func, ast.Attribute)
            for callee_qual in site.callees:
                callee = graph.functions.get(callee_qual)
                summary = effects.summary(callee_qual)
                if callee is None or summary is None:
                    continue
                for param, expr in bind_args(
                    site.node, callee, method_call=method_call
                ):
                    if (
                        isinstance(expr, ast.Name)
                        and expr.id in aliases
                        and param in summary.writes_params
                        and not _rebound_between(
                            rebinds, expr.id, line, site.line
                        )
                    ):
                        self._stage(
                            program,
                            info.path,
                            site.node,
                            f"'{expr.id}' aliases '{name}' shared via "
                            f"{label} on line {line}, but "
                            f"{callee.name}() writes its parameter "
                            f"'{param}' in place",
                        )

    def _check_freeze_contract(
        self, program: Program, graph: CallGraph, site: CallSite
    ) -> None:
        for callee_qual in site.callees:
            callee = graph.functions.get(callee_qual)
            if callee is None:
                return
            if _freezes_arrays(callee, graph):
                return
            self._stage(
                program,
                site.path,
                site.node,
                f"{site.name}() adopts arrays by reference but "
                f"{callee.qualname} never freezes them "
                f"(set .flags.writeable = False on every stored array)",
            )


def _is_trusted(node: ast.Call) -> bool:
    return any(
        keyword.arg == "trusted"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in node.keywords
    )


def _rebind_lines(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef, aliases: set[str]
) -> list[tuple[str, int]]:
    """``(name, line)`` for assignments that break the alias (fresh value)."""
    rebinds: list[tuple[str, int]] = []
    for node in walk_scope(func_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if _value_alias_names(node.value) & aliases:
            continue  # still the same buffer — not a reset
        rebinds.append((target.id, node.lineno))
    return rebinds


def _value_alias_names(value: ast.AST) -> set[str]:
    """Names whose buffer the assigned expression may share."""
    if isinstance(value, ast.Name):
        return {value.id}
    if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
        return {value.value.id}
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in _VIEW_METHODS
        and isinstance(value.func.value, ast.Name)
    ):
        return {value.func.value.id}
    return set()


def _rebound_between(
    rebinds: list[tuple[str, int]], name: str, share_line: int, use_line: int
) -> bool:
    return any(
        bound == name and share_line < line <= use_line
        for bound, line in rebinds
    )


def _freezes_arrays(callee: FunctionInfo, graph: CallGraph) -> bool:
    """Whether an adopting API (or a direct helper) marks arrays read-only."""
    if _freezes_textually(callee.node):
        return True
    for site in graph.sites_in(callee.qualname):
        for helper_qual in site.callees:
            helper = graph.functions.get(helper_qual)
            if helper is not None and _freezes_textually(helper.node):
                return True
    return False


def _freezes_textually(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                path = dotted(target)
                if (
                    path is not None
                    and path.endswith(".flags.writeable")
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is False
                ):
                    return True
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
        ):
            for keyword in node.keywords:
                if (
                    keyword.arg == "write"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    return True
    return False


@register
class DeadEscapeHatchRule(_StagedRule):
    """IP003: an escape hatch nobody can pull is a liability, not a safety.

    The performance stack ships ``@contextmanager`` kill switches
    (``*_disabled``) so a bad cache or kernel can be bypassed without a
    rollback.  A hatch that no analysed module and no test ever enters is
    dead weight: it silently rots (nothing exercises the disabled path)
    and its presence falsely suggests a tested fallback exists.  Either
    wire a test through the hatch or delete it.  Liveness counts any
    load of the name in the analysed files plus any non-import,
    non-definition mention under the repository ``tests/`` tree;
    re-exports and ``__all__`` listings do not count as use.
    """

    rule_id = "IP003"
    title = "escape-hatch context manager is unreachable"
    severity = Severity.WARNING

    def prepare(self, program: Program) -> None:
        hatches: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]] = []
        for ctx in program.contexts:
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name.endswith("_disabled")
                    and any(
                        _is_contextmanager(d) for d in node.decorator_list
                    )
                ):
                    hatches.append((str(ctx.path), node))
        if not hatches:
            return
        loaded: set[str] = set()
        for ctx in program.contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    loaded.add(node.id)
                elif isinstance(node, ast.Attribute):
                    loaded.add(node.attr)
        tested = _tests_tree_mentions({node.name for _, node in hatches})
        for path, node in hatches:
            if node.name in loaded or node.name in tested:
                continue
            self._stage(
                program,
                path,
                node,
                f"escape hatch {node.name}() is never entered by any "
                f"analysed module or test; wire a test through it or "
                f"remove it",
            )


def _is_contextmanager(decorator: ast.AST) -> bool:
    if isinstance(decorator, ast.Name):
        return decorator.id == "contextmanager"
    if isinstance(decorator, ast.Attribute):
        return decorator.attr == "contextmanager"
    return False


def _tests_tree_mentions(names: set[str]) -> set[str]:
    """Hatch names mentioned by a *use* line under the repo tests tree."""
    tests_dir = Path(__file__).resolve().parents[4] / "tests"
    found: set[str] = set()
    if not tests_dir.is_dir():
        return found
    skip = ("def ", "async def ", "@", "from ", "import ", "#")
    for path in sorted(tests_dir.rglob("*.py")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:  # pragma: no cover - unreadable test file
            continue
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(skip):
                continue
            for name in names:
                if name in line:
                    found.add(name)
    return found


@register
class AmbientRngCrossingRule(_StagedRule):
    """IP004: ambient randomness must not cross into decision code.

    DET001 bans creating unseeded generators *inside* the decision scope
    (scheduling, simulation, performance, baselines).  The remaining
    hole is interprocedural: a driver outside the scope builds
    ``default_rng()`` and passes it in, and every digest downstream is
    unreproducible even though the decision modules themselves lint
    clean.  This rule follows the effect summaries — locals bound to
    ambient generators, returns that may produce one, parameters tainted
    by any caller — and flags the call site where such a value is bound
    to a parameter of an in-scope callee.  Thread a seeded
    ``Generator`` from the experiment configuration instead.
    """

    rule_id = "IP004"
    title = "ambient RNG flows into the decision scope"
    severity = Severity.ERROR

    def prepare(self, program: Program) -> None:
        effects = program.effects
        for site, callee_qual, param in effects.ambient_decision_crossings(
            DECISION_SCOPE
        ):
            self._stage(
                program,
                site.path,
                site.node,
                f"ambient (unseeded) randomness is passed as parameter "
                f"'{param}' of {callee_qual}; decisions fed by it are "
                f"unreproducible — thread a seeded Generator instead",
            )


@register
class UnprovenVerifiedReadRule(_StagedRule):
    """IP005: ``verified`` state is only as good as its last proof.

    A ``@coherent`` field of kind ``"verified:<fn>"`` names the method
    that re-proves the cached state against ground truth (e.g.
    ``window_undisturbed`` for perturbation versions).  The contract is
    that *every* consuming read re-proves first; a read path that skips
    the verifier quietly promotes advisory state to trusted state.  This
    rule flags any method of the owning class that reads the field
    without (transitively) calling a declared verifier.  Constructors,
    declared mutators, the verifiers themselves, and bare accessors
    (``return self._field``, which merely re-export the advisory value)
    are exempt.  Plain ``"verified"`` without a named verifier is not
    checked — there is nothing to prove against.
    """

    rule_id = "IP005"
    title = "verified coherent field read without re-proof"
    severity = Severity.ERROR

    def prepare(self, program: Program) -> None:
        graph = program.callgraph
        effects = program.effects
        for class_info in graph.classes.values():
            for field_name, dependency in class_info.coherent_fields.items():
                if dep_kind(dependency) != VERIFIED:
                    continue
                verifiers = set(dep_verifiers(dependency))
                if not verifiers:
                    continue
                for method_name, qualname in class_info.methods.items():
                    if method_name in CONSTRUCTORS or method_name in verifiers:
                        continue
                    func = graph.functions.get(qualname)
                    if func is None:
                        continue
                    if (
                        field_name in func.mutates
                        or f"{class_info.name}.{field_name}" in func.mutates
                    ):
                        continue
                    reads = _self_field_reads(func.node, field_name)
                    if not reads:
                        continue
                    if _is_bare_accessor(func.node, field_name):
                        continue
                    if effects.reaches_call(qualname, verifiers):
                        continue
                    self._stage(
                        program,
                        func.path,
                        reads[0],
                        f"{class_info.name}.{method_name}() reads verified "
                        f"field '{field_name}' without re-proving it via "
                        f"{' or '.join(sorted(verifiers))}()",
                    )


def _self_field_reads(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef, field_name: str
) -> list[ast.Attribute]:
    return [
        node
        for node in walk_scope(func_node)
        if isinstance(node, ast.Attribute)
        and isinstance(node.ctx, ast.Load)
        and node.attr == field_name
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ]


def _is_bare_accessor(
    func_node: ast.FunctionDef | ast.AsyncFunctionDef, field_name: str
) -> bool:
    body = list(func_node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        return False
    value = body[0].value
    return (
        isinstance(value, ast.Attribute)
        and value.attr == field_name
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    )
