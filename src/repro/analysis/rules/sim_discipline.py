"""Simulation-discipline rules (SIM).

The discrete-event engine models hours of cluster time in milliseconds of
wall time, and replays must be exact.  Real I/O inside the simulation —
sleeping, touching the filesystem, opening sockets — breaks both
properties at once: it couples simulated time to the host and makes the
run depend on ambient machine state.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["SimulationIORule"]

#: Dotted tails (last two components) of real-I/O calls.
_IO_CALL_TAILS: dict[str, str] = {
    "time.sleep": "real sleep",
    "os.system": "subprocess spawn",
    "os.popen": "subprocess spawn",
    "subprocess.run": "subprocess spawn",
    "subprocess.call": "subprocess spawn",
    "subprocess.check_call": "subprocess spawn",
    "subprocess.check_output": "subprocess spawn",
    "subprocess.Popen": "subprocess spawn",
    "socket.socket": "network I/O",
    "socket.create_connection": "network I/O",
    "requests.get": "network I/O",
    "requests.post": "network I/O",
    "urllib.urlopen": "network I/O",
    "request.urlopen": "network I/O",
}

#: Method names on ``pathlib.Path``-like receivers that hit the disk.
_PATH_IO_METHODS = {
    "read_text", "read_bytes", "write_text", "write_bytes",
    "open", "mkdir", "unlink", "touch", "rmdir", "rename",
}


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class SimulationIORule(Rule):
    """SIM001 — no real sleep, file, or network I/O inside the simulator.

    Inside ``repro.sim``, code must not call ``time.sleep``, ``open``,
    ``pathlib`` read/write methods, ``os.system``/``subprocess``, or
    socket/HTTP entry points.  Simulated time advances only through the
    event engine, and all inputs/outputs cross the simulation boundary as
    in-memory objects (traces in, recorder samples out).  Persistence
    belongs to the callers in ``experiments/``.
    """

    rule_id = "SIM001"
    title = "real I/O inside the simulation"
    severity = Severity.ERROR
    scope = ("repro.sim",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._offence(node)
            if message is not None:
                yield ctx.finding(node, self.rule_id, message)

    def _offence(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return (
                    "`open(...)` inside the simulation; pass data in memory "
                    "and let experiments/ own persistence"
                )
            return None
        dotted = _dotted(func)
        if dotted is not None:
            tail2 = ".".join(dotted.split(".")[-2:])
            if tail2 in _IO_CALL_TAILS:
                kind = _IO_CALL_TAILS[tail2]
                return (
                    f"{kind} `{dotted}(...)` inside the simulation; the "
                    f"event engine must stay free of real I/O"
                )
        if isinstance(func, ast.Attribute) and func.attr in _PATH_IO_METHODS:
            receiver = _dotted(func.value)
            # `open` as a bare attribute is too common (file-like objects);
            # only flag the unambiguous Path-style read_/write_ methods plus
            # filesystem mutations when the receiver itself suggests a path.
            if func.attr in ("read_text", "read_bytes", "write_text", "write_bytes"):
                return (
                    f"filesystem access `.{func.attr}(...)` inside the "
                    f"simulation; move persistence out of repro.sim"
                )
            if receiver is not None and "path" in receiver.lower():
                return (
                    f"filesystem access `{receiver}.{func.attr}(...)` inside "
                    f"the simulation; move persistence out of repro.sim"
                )
        return None
