"""Suppression-hygiene rules (SUP).

Suppressions are the linter's escape hatch; this family keeps the hatch
honest.  It works over the parsed suppression comments rather than the
AST, but uses the same rule interface as everything else.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["UnjustifiedSuppressionRule"]


@register
class UnjustifiedSuppressionRule(Rule):
    """SUP001 — every suppression carries a written justification.

    A ``# lint: disable=RULE`` comment must end with
    ``-- <why this is safe here>``.  The justification lives in the same
    diff that silences the finding, so review happens exactly once, where
    the context is.  A suppression without one is itself a finding.
    """

    rule_id = "SUP001"
    title = "suppression without justification"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for line, suppression in sorted(ctx.suppressions.items()):
            if suppression.reason:
                continue
            silenced = (
                "all rules" if suppression.all_rules
                else ", ".join(sorted(suppression.rule_ids))
            )
            yield Finding(
                path=ctx.display_path,
                line=line,
                col=0,
                rule_id=self.rule_id,
                message=(
                    f"suppression of {silenced} has no justification; append "
                    f"`-- <why this is safe here>`"
                ),
                severity=self.severity,
                snippet=ctx.line(line).strip(),
            )
