"""Built-in rule modules.

Importing this package registers every built-in rule (each module's
``@register`` decorators run at import).  The runner imports it through
:func:`repro.analysis.registry.all_rules`; nothing else should need to.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imports register rules)
    cache_coherence,
    determinism,
    errors_hygiene,
    interprocedural,
    numeric_hygiene,
    parallelism,
    sim_discipline,
    suppression_hygiene,
)

__all__ = [
    "cache_coherence",
    "determinism",
    "errors_hygiene",
    "interprocedural",
    "numeric_hygiene",
    "parallelism",
    "sim_discipline",
    "suppression_hygiene",
]
