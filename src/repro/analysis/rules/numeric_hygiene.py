"""Numeric-hygiene rules (NH).

Scheduling quantities are floats produced by arithmetic (times, deadlines,
throughputs, slot weights): exact comparison between them depends on
rounding order, which the memoisation layer is explicitly allowed to
change.  GPU counts are powers of two everywhere (buddy allocation), and
hand-rolled bit tricks for them have historically drifted apart between
modules.  Both idioms now have one home: :mod:`repro.numeric`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["FloatEqualityRule", "PowerOfTwoHandRollRule"]

#: Identifier fragments that mark a value as float-typed scheduling
#: arithmetic.  Both comparison operands must match for NH001 to fire,
#: which keeps integer-flag comparisons (``usable == 0``) out of scope.
_FLOAT_LEXICON = {
    "time", "times", "deadline", "deadlines", "weight", "weights",
    "throughput", "thr", "rate", "rates", "duration", "durations",
    "seconds", "secs", "load", "lambda", "factor", "priority", "cost",
    "progress", "efficiency", "speedup", "margin", "alpha", "eps",
    "stall", "overhead", "span", "elapsed", "latency",
}

#: The one module allowed to spell the bit tricks out.
_NUMERIC_HOME = "repro.numeric"


def _identifier_tokens(name: str) -> set[str]:
    return set(name.lower().replace("-", "_").split("_"))


def _is_floatish(node: ast.AST) -> bool:
    """Whether an expression is heuristically float-typed arithmetic."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return bool(_identifier_tokens(node.id) & _FLOAT_LEXICON)
    if isinstance(node, ast.Attribute):
        return bool(_identifier_tokens(node.attr) & _FLOAT_LEXICON)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute):
            return bool(_identifier_tokens(func.attr) & _FLOAT_LEXICON)
        return False
    if isinstance(node, ast.Subscript):
        return _is_floatish(node.value)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_floatish(node.left) or _is_floatish(node.right)
    return False


@register
class FloatEqualityRule(Rule):
    """NH001 — no ``==``/``!=`` between float-typed scheduling expressions.

    When *both* operands of an equality comparison look like float
    scheduling arithmetic (time/deadline/throughput/weight/... names,
    float literals, ``float(...)`` casts), the comparison must go through
    :func:`repro.numeric.feq`/:func:`repro.numeric.fne` with the shared
    epsilon.  Exact float equality silently depends on evaluation order,
    which the planning fast paths are free to change.
    """

    rule_id = "NH001"
    title = "exact equality between float scheduling expressions"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module == _NUMERIC_HOME:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) and _is_floatish(right):
                    helper = "feq" if isinstance(op, ast.Eq) else "fne"
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"exact float comparison between "
                        f"`{ast.unparse(left)}` and `{ast.unparse(right)}`; "
                        f"use repro.numeric.{helper}(...)",
                    )


@register
class PowerOfTwoHandRollRule(Rule):
    """NH002 — GPU counts flow through the shared power-of-two helpers.

    The idioms ``value & (value - 1)`` (power-of-two test),
    ``1 << (value.bit_length() - 1)`` (floor to a power of two), and
    ``1 << int(math.log2(value))`` must not be hand-rolled outside
    :mod:`repro.numeric`; call :func:`repro.numeric.is_power_of_two`,
    :func:`repro.numeric.floor_power_of_two`, or
    :func:`repro.numeric.next_power_of_two` instead, so every GPU-count
    computation shares one definition (and one set of edge cases).
    """

    rule_id = "NH002"
    title = "hand-rolled power-of-two bit trick"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module == _NUMERIC_HOME:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if self._is_and_minus_one(node):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "hand-rolled `x & (x - 1)` power-of-two test; use "
                    "repro.numeric.is_power_of_two(x)",
                )
            elif self._is_shift_hand_roll(node):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "hand-rolled power-of-two construction; use "
                    "repro.numeric.floor_power_of_two / next_power_of_two",
                )

    @staticmethod
    def _is_and_minus_one(node: ast.BinOp) -> bool:
        """Matches ``<expr> & (<expr> - 1)`` with a textually equal expr."""
        if not isinstance(node.op, ast.BitAnd):
            return False
        for one, other in ((node.left, node.right), (node.right, node.left)):
            if (
                isinstance(other, ast.BinOp)
                and isinstance(other.op, ast.Sub)
                and isinstance(other.right, ast.Constant)
                and other.right.value == 1
                and ast.dump(other.left) == ast.dump(one)
            ):
                return True
        return False

    @staticmethod
    def _is_shift_hand_roll(node: ast.BinOp) -> bool:
        """Matches ``1 << (bit_length/log2 arithmetic)``."""
        if not isinstance(node.op, ast.LShift):
            return False
        if not (isinstance(node.left, ast.Constant) and node.left.value == 1):
            return False
        for inner in ast.walk(node.right):
            if isinstance(inner, ast.Call):
                func = inner.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "bit_length",
                    "log2",
                ):
                    return True
                if isinstance(func, ast.Name) and func.id == "log2":
                    return True
        return False
