"""Parallel-safety rules (PAR).

The fan-out engine's determinism contract (see ``docs/performance.md``)
holds because a spawn worker rebuilds everything it needs from the
picklable :class:`~repro.parallel.spec.RunSpec` — results can only depend
on the spec.  Module-level *mutable* state breaks that reasoning twice
over: accumulated in the parent, it never reaches spawn workers (fresh
interpreters), so serial and parallel runs read different values; mutated
in a worker, it silently vanishes when the process exits.  Either way the
bug is invisible on ``workers=1``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["ModuleLevelMutableStateRule"]

#: Packages imported by the spawn-worker entrypoint
#: (``repro.parallel.engine._execute_spec``).
_WORKER_SCOPE = ("repro.parallel", "repro.experiments")

#: Constructors whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque",
    "OrderedDict",
}


def _is_mutable_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CONSTRUCTORS
    return False


@register
class ModuleLevelMutableStateRule(Rule):
    """PAR001 — no module-level mutable state in worker-reachable code.

    Inside ``repro.parallel`` and ``repro.experiments`` (the packages the
    spawn-worker entrypoint imports), module-level names must not be bound
    to mutable containers — list/dict/set/bytearray displays,
    comprehensions, or constructor calls (``list()``, ``defaultdict`` and
    friends).  A spawn worker starts from a fresh interpreter, so such
    state silently diverges between the serial and parallel paths and
    breaks the engine's bit-identical contract.  Keep accumulating state
    on instances (e.g. ``RunCache.stats``) or thread it through the
    ``RunSpec``; module-level *constants* belong in immutable containers
    (tuples, frozensets, ``MappingProxyType``).  Dunder names such as
    ``__all__`` are exempt by convention.
    """

    rule_id = "PAR001"
    title = "module-level mutable state in worker-reachable code"
    severity = Severity.ERROR
    scope = _WORKER_SCOPE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None or not _is_mutable_expr(value):
                continue
            for target in targets:
                name = target.id if isinstance(target, ast.Name) else None
                if name is not None and name.startswith("__") and name.endswith("__"):
                    continue
                label = name or "this binding"
                yield ctx.finding(
                    stmt,
                    self.rule_id,
                    f"module-level mutable container `{label}` is invisible "
                    f"to spawn workers; use an immutable constant or move the "
                    f"state onto an instance",
                )
