"""Error-handling hygiene rules (ERR).

The reproduction's debugging loop is "read the traceback, find the seed
state" — a swallowed exception or a chain-broken re-raise deletes exactly
the context that loop needs.  These rules apply repo-wide.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

__all__ = ["BareExceptRule", "UnchainedRaiseRule"]


@register
class BareExceptRule(Rule):
    """ERR001 — no bare ``except:`` clauses.

    A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit``
    along with everything else, turning Ctrl-C into silent corruption.
    Catch a concrete exception type — at minimum ``Exception``; library
    code should catch :class:`repro.errors.ReproError` subclasses.
    """

    rule_id = "ERR001"
    title = "bare except clause"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )


@register
class UnchainedRaiseRule(Rule):
    """ERR002 — re-raises inside ``except`` blocks keep the causal chain.

    A ``raise NewError(...)`` inside an ``except`` handler without
    ``from e`` (or an explicit ``from None``) severs the traceback from
    the original failure.  Translate exceptions with
    ``raise ReproError(...) from e``, or suppress the chain deliberately
    with ``from None``; a bare ``raise`` (re-raising the caught object)
    is always fine.
    """

    rule_id = "ERR002"
    title = "exception re-raised without `from`"
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for stmt in node.body:
                yield from self._check_handler_block(ctx, stmt)

    def _check_handler_block(
        self, ctx: FileContext, stmt: ast.stmt
    ) -> Iterable[Finding]:
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ) and node is not stmt:
                continue  # deferred code runs outside this handler
            if isinstance(node, ast.Try):
                # A nested try introduces its own handlers; its raises are
                # judged against the inner handlers, not this one.
                continue
            if (
                isinstance(node, ast.Raise)
                and node.exc is not None
                and node.cause is None
            ):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "raise inside an except handler without `from`; use "
                    "`raise ... from e` (or `from None` to suppress "
                    "deliberately)",
                )
            stack.extend(ast.iter_child_nodes(node))
