"""Cache-coherence rules (CC).

These rules verify the declarations made with the
:mod:`repro.perf.coherence` decorators: classes declare which fields feed
fingerprints/tokens/derived caches (``@coherent``), which memos are kept
fresh by revision-carrying keys (``@keyed``), and methods declare intended
mutations (``@mutates``) and invalidation capability (``@invalidates``).
The analyser re-derives the registry from source — no imports, no runtime —
and checks that every mutation discharges its invalidation obligation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analysis.astutil import dep_kind
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register, walk_scope

__all__ = [
    "MutatorHookRule",
    "UndeclaredMutationRule",
    "ForeignMutationRule",
    "StaleCrossDeclarationRule",
    "KeyedMemoRule",
]

#: Method-call names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "add", "remove", "discard", "pop", "popitem", "clear",
    "update", "setdefault", "extend", "insert", "sort", "reverse",
    "move_to_end", "fill", "resize",
}

#: The ``@coherent`` dependency name meaning "never mutate after init".
_FROZEN = "frozen"

#: The ``@coherent`` dependency name for advisory state that is re-checked
#: against ground truth at every point of use (e.g. warm-start cap hints):
#: stale entries cost time, never correctness, so declared mutators carry
#: no invalidation obligation.  CC002 still requires the ``@mutates``
#: declaration — the *intent* to mutate stays explicit.  The declaration
#: may name the verifier(s) — ``"verified:window_undisturbed"`` — which
#: the interprocedural rule IP005 checks; here only the kind matters, so
#: all comparisons go through :func:`repro.analysis.astutil.dep_kind`.
_VERIFIED = "verified"

#: Methods allowed to touch coherent fields without a declaration: object
#: construction, which by definition precedes any derived cache.
_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


def _decorator_call(node: ast.AST, name: str) -> ast.Call | None:
    """The decorator node if it is ``@name(...)`` (possibly dotted)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == name:
        return node
    if isinstance(func, ast.Attribute) and func.attr == name:
        return node
    return None


def _string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def _string_keywords(call: ast.Call) -> dict[str, str]:
    out: dict[str, str] = {}
    for keyword in call.keywords:
        if keyword.arg and isinstance(keyword.value, ast.Constant) and isinstance(
            keyword.value.value, str
        ):
            out[keyword.arg] = keyword.value.value
    return out


@dataclass
class _ClassDecl:
    """One class's coherence declarations, as parsed from source."""

    name: str
    module: str
    coherent_fields: dict[str, str] = field(default_factory=dict)
    keyed_fields: dict[str, str] = field(default_factory=dict)
    mutator_methods: dict[str, tuple[str, ...]] = field(default_factory=dict)


class _Declarations:
    """Whole-program facts shared by every CC rule within one run."""

    def __init__(self) -> None:
        self.classes: dict[str, _ClassDecl] = {}  # class name -> declaration
        self.providers: dict[str, set[str]] = {}  # dependency -> callables
        #: field name -> {(class name, dependency)} for the foreign check.
        self.coherent_field_owners: dict[str, set[tuple[str, str]]] = {}
        self.seen_modules: set[str] = set()

    def collect(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._collect_class(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(node)

    def _collect_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        decl = self.classes.setdefault(
            node.name, _ClassDecl(name=node.name, module=ctx.module)
        )
        for decorator in node.decorator_list:
            call = _decorator_call(decorator, "coherent")
            if call is not None:
                decl.coherent_fields.update(_string_keywords(call))
            call = _decorator_call(decorator, "keyed")
            if call is not None:
                decl.keyed_fields.update(_string_keywords(call))
        for field_name, dependency in decl.coherent_fields.items():
            self.coherent_field_owners.setdefault(field_name, set()).add(
                (node.name, dependency)
            )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declared = self._mutates_of(item)
                if declared:
                    decl.mutator_methods[item.name] = declared
                self._collect_function(item)

    def _collect_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for decorator in node.decorator_list:
            call = _decorator_call(decorator, "invalidates")
            if call is not None:
                for dependency in _string_args(call):
                    self.providers.setdefault(dependency, set()).add(node.name)

    @staticmethod
    def _mutates_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
        declared: list[str] = []
        for decorator in node.decorator_list:
            call = _decorator_call(decorator, "mutates")
            if call is not None:
                declared.extend(_string_args(call))
        return tuple(declared)

    @staticmethod
    def _invalidates_of(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> tuple[str, ...]:
        provided: list[str] = []
        for decorator in node.decorator_list:
            call = _decorator_call(decorator, "invalidates")
            if call is not None:
                provided.extend(_string_args(call))
        return tuple(provided)


#: One shared declaration table per analysis run.  The runner resets it
#: before the collect phase (see ``reset_declarations``).
_DECLARATIONS = _Declarations()


def reset_declarations() -> None:
    """Start a fresh declaration table (called by the runner per run)."""
    global _DECLARATIONS
    _DECLARATIONS = _Declarations()


def declarations() -> _Declarations:
    return _DECLARATIONS


class _CCRuleBase(Rule):
    """Shared collect phase: parse declarations out of every file."""

    severity = Severity.ERROR

    def collect(self, ctx: FileContext) -> None:
        # The table is shared; only the first CC rule pays the parse.
        decls = declarations()
        if str(ctx.path) not in decls.seen_modules:
            decls.seen_modules.add(str(ctx.path))
            decls.collect(ctx)


def _self_field_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterable[tuple[str, ast.AST]]:
    """Yield ``(field, node)`` for each textual ``self.<field>`` mutation."""
    for node in walk_scope(func):
        yield from _field_mutations_of(node, receiver="self")


def _field_mutations_of(
    node: ast.AST, *, receiver: str | None
) -> Iterable[tuple[str, ast.AST]]:
    """``(field, node)`` pairs for mutations through one receiver name.

    ``receiver=None`` matches any non-``self`` name (the foreign check).
    Covers plain/aug assignment, ``del``, subscript stores, slice stores,
    and in-place mutating method calls.
    """

    def matches(value: ast.AST) -> bool:
        if not isinstance(value, ast.Name):
            return False
        if receiver is None:
            return value.id != "self"
        return value.id == receiver

    def attr_of(target: ast.AST) -> str | None:
        # `obj.field` directly, or `obj.field[...]` subscript store.
        if isinstance(target, ast.Attribute) and matches(target.value):
            return target.attr
        if isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Attribute) and matches(inner.value):
                return inner.attr
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            name = attr_of(target)
            if name is not None:
                yield name, node
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        name = attr_of(node.target)
        if name is not None:
            yield name, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            name = attr_of(target)
            if name is not None:
                yield name, node
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            inner = node.func.value
            if isinstance(inner, ast.Attribute) and matches(inner.value):
                yield inner.attr, node


# --------------------------------------------------------------------------
# Every-path call analysis
# --------------------------------------------------------------------------


def _is_provider_call(stmt: ast.AST, provider_names: set[str]) -> bool:
    """Whether a simple statement performs a call to any provider."""
    for node in walk_scope(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in provider_names:
                return True
    return False


def always_calls(
    body: list[ast.stmt], provider_names: set[str]
) -> tuple[bool, list[ast.stmt]]:
    """Conservative every-path analysis of one statement list.

    Returns ``(called_at_fallthrough, bad_exits)`` where ``bad_exits`` are
    ``return`` statements reached without a provider call.  Paths that end
    in ``raise`` are exempt (error paths abandon the mutation's effects to
    the caller, which re-raises past every cache consumer).
    """
    bad_exits: list[ast.stmt] = []
    called = _scan_block(body, False, bad_exits, provider_names)
    return called, bad_exits


def _scan_block(
    stmts: list[ast.stmt],
    called: bool,
    bad_exits: list[ast.stmt],
    providers: set[str],
) -> bool:
    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            if not called and not _is_provider_call(stmt, providers):
                bad_exits.append(stmt)
            return True  # nothing after a return is reachable
        if isinstance(stmt, ast.Raise):
            return True  # raise-exit: exempt, block cannot fall through
        if isinstance(stmt, ast.If):
            then_called = _scan_block(stmt.body, called, bad_exits, providers)
            else_called = _scan_block(stmt.orelse, called, bad_exits, providers)
            called = called or (then_called and else_called)
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # The loop body may run zero times: calls inside cannot be
            # credited, but returns inside are still real exits.
            _scan_block(stmt.body, called, bad_exits, providers)
            _scan_block(stmt.orelse, called, bad_exits, providers)
            continue
        if isinstance(stmt, ast.Try):
            body_called = _scan_block(stmt.body, called, bad_exits, providers)
            for handler in stmt.handlers:
                _scan_block(handler.body, called, bad_exits, providers)
            else_called = _scan_block(stmt.orelse, body_called, bad_exits, providers)
            final_called = _scan_block(
                stmt.finalbody, called, bad_exits, providers
            )
            # Only the finally block is guaranteed on every path.
            called = called or final_called
            if not stmt.finalbody:
                called = called or (body_called and else_called)
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            called = _scan_block(stmt.body, called, bad_exits, providers)
            continue
        if isinstance(stmt, ast.Match):
            # Conservative: cases are alternatives and may all be skipped.
            for case in stmt.cases:
                _scan_block(case.body, called, bad_exits, providers)
            continue
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested definitions run later, if ever
        if not called and _is_provider_call(stmt, providers):
            called = True
    return called


# --------------------------------------------------------------------------
# The rules
# --------------------------------------------------------------------------


@register
class MutatorHookRule(_CCRuleBase):
    """CC001 — declared mutators must invalidate on every path.

    A method decorated ``@mutates("<field>")`` whose class declares the
    field via ``@coherent(<field>="<dep>")`` must, on every non-raising
    path, call a function registered as ``@invalidates("<dep>")`` (or be
    such a provider itself).  Mutating a fingerprinted/tokenised field
    without reaching its invalidation hook leaves every derived cache —
    planning tables, fill fingerprints, revision-keyed memos — silently
    stale.  Fields declared ``frozen`` have no hook and must not be
    mutated at all.
    """

    rule_id = "CC001"
    title = "coherent-field mutator misses its invalidation hook"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        decls = declarations()
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            decl = decls.classes.get(class_node.name)
            if decl is None or not decl.coherent_fields:
                continue
            for item in class_node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                declared = decls._mutates_of(item)
                if not declared:
                    continue
                self_provided = set(decls._invalidates_of(item))
                for field_name in declared:
                    if "." in field_name:
                        continue  # cross-class: checked by CC004
                    dependency = decl.coherent_fields.get(field_name)
                    if dependency is None:
                        yield ctx.finding(
                            item,
                            self.rule_id,
                            f"@mutates({field_name!r}) on "
                            f"{decl.name}.{item.name} names a field the "
                            f"class does not declare via @coherent(...)",
                        )
                        continue
                    if dep_kind(dependency) == _FROZEN:
                        yield ctx.finding(
                            item,
                            self.rule_id,
                            f"{decl.name}.{field_name} is declared frozen; "
                            f"no mutator may exist for it",
                        )
                        continue
                    if dep_kind(dependency) == _VERIFIED:
                        # Advisory state, re-validated at use: the declared
                        # mutator discharges nothing.
                        continue
                    if dependency in self_provided:
                        continue  # the method IS the invalidation point
                    providers = decls.providers.get(dependency, set())
                    if not providers:
                        yield ctx.finding(
                            item,
                            self.rule_id,
                            f"no @invalidates({dependency!r}) provider is "
                            f"declared anywhere in the analysed tree",
                        )
                        continue
                    called, bad_exits = always_calls(item.body, providers)
                    # Early-guard returns *before* the first textual
                    # mutation of the field exit with nothing to
                    # invalidate; only exits at or past the mutation count.
                    mutation_lines = [
                        node.lineno
                        for name, node in _self_field_mutations(item)
                        if name == field_name
                    ]
                    if mutation_lines:
                        threshold = min(mutation_lines)
                        bad_exits = [
                            exit_stmt
                            for exit_stmt in bad_exits
                            if exit_stmt.lineno >= threshold
                        ]
                    if called and not bad_exits:
                        continue
                    anchor = bad_exits[0] if bad_exits else item
                    names = ", ".join(sorted(providers))
                    yield ctx.finding(
                        anchor,
                        self.rule_id,
                        f"{decl.name}.{item.name} mutates coherent field "
                        f"{field_name!r} but does not call an invalidation "
                        f"provider of {dependency!r} ({names}) on every "
                        f"non-raising path",
                    )


@register
class UndeclaredMutationRule(_CCRuleBase):
    """CC002 — coherent fields may only be mutated by declared mutators.

    Inside a class that declares ``@coherent`` fields, any textual
    mutation of such a field (``self.f = ...``, ``self.f += ...``,
    ``self.f[...] = ...``, ``del self.f``, or an in-place method call
    like ``self.f.update(...)``) must sit in a method decorated
    ``@mutates("f")`` — or in ``__init__``/``__post_init__``, where the
    object cannot yet have dependants.  Frozen fields admit no mutator
    outside construction at all.
    """

    rule_id = "CC002"
    title = "undeclared mutation of a coherent field"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        decls = declarations()
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            decl = decls.classes.get(class_node.name)
            if decl is None or not decl.coherent_fields:
                continue
            for item in class_node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _CONSTRUCTORS:
                    continue
                declared = set(decls._mutates_of(item))
                for field_name, node in _self_field_mutations(item):
                    if field_name not in decl.coherent_fields:
                        continue
                    if field_name in declared:
                        continue
                    dependency = decl.coherent_fields[field_name]
                    if dep_kind(dependency) == _FROZEN:
                        hint = (
                            "the field is frozen: move the mutation into "
                            "construction"
                        )
                    elif dep_kind(dependency) == _VERIFIED:
                        hint = (
                            f"the field is advisory (verified at use): "
                            f"decorate the method with "
                            f"@mutates({field_name!r})"
                        )
                    else:
                        hint = (
                            f"decorate the method with "
                            f"@mutates({field_name!r}) and call the "
                            f"{dependency!r} invalidation"
                        )
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"{decl.name}.{item.name} mutates coherent field "
                        f"{field_name!r} without declaring it; {hint}",
                    )


@register
class ForeignMutationRule(_CCRuleBase):
    """CC003 — no reaching into another object's coherent fields.

    A field declared coherent anywhere in the tree must never be mutated
    through a non-``self`` receiver (``ledger._plans[...] = ...``,
    ``info.weights += ...``): all mutation goes through the owning
    class's declared mutator methods, which carry the invalidation
    obligation.  A function may override this only by declaring the
    cross-class mutation explicitly: ``@mutates("Ledger._plans")``.
    """

    rule_id = "CC003"
    title = "foreign mutation of a coherent field"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        decls = declarations()
        if not decls.coherent_field_owners:
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            permitted = {
                name for name in decls._mutates_of(func) if "." in name
            }
            for node in walk_scope(func):
                for field_name, mutation in _field_mutations_of(
                    node, receiver=None
                ):
                    owners = decls.coherent_field_owners.get(field_name)
                    if not owners:
                        continue
                    if any(
                        f"{cls}.{field_name}" in permitted for cls, _ in owners
                    ):
                        continue
                    owner_names = ", ".join(sorted(cls for cls, _ in owners))
                    yield ctx.finding(
                        mutation,
                        self.rule_id,
                        f"mutation of coherent field {field_name!r} (declared "
                        f"by {owner_names}) through a foreign receiver; call "
                        f"the owning class's declared mutator instead",
                    )


@register
class StaleCrossDeclarationRule(_CCRuleBase):
    """CC004 — cross-class @mutates declarations must be exercised.

    ``@mutates("Ledger._plans")`` on a free function promises that the
    function drives mutations of that class's coherent state.  The body
    must therefore call at least one of the class's declared mutator
    methods; a declaration with no matching call is stale documentation
    that would grandfather real violations later.
    """

    rule_id = "CC004"
    title = "stale cross-class mutation declaration"
    severity = Severity.WARNING

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        decls = declarations()
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for declared in decls._mutates_of(func):
                if "." not in declared:
                    continue
                class_name, _, field_name = declared.partition(".")
                decl = decls.classes.get(class_name)
                if decl is None or field_name not in decl.coherent_fields:
                    yield ctx.finding(
                        func,
                        self.rule_id,
                        f"@mutates({declared!r}) names an unknown coherent "
                        f"field; declare it with @coherent on {class_name}",
                        severity=self.severity,
                    )
                    continue
                mutators = {
                    name
                    for name, fields in decl.mutator_methods.items()
                    if field_name in fields
                }
                if not mutators:
                    continue  # the class declares no mutators to call
                if not self._calls_any(func, mutators):
                    names = ", ".join(sorted(mutators))
                    yield ctx.finding(
                        func,
                        self.rule_id,
                        f"{func.name} declares @mutates({declared!r}) but "
                        f"never calls a declared mutator ({names})",
                        severity=self.severity,
                    )

    @staticmethod
    def _calls_any(func: ast.AST, method_names: set[str]) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in method_names:
                    return True
        return False


@register
class KeyedMemoRule(_CCRuleBase):
    """CC005 — revision-keyed memos must derive keys from their revision.

    A field declared ``@keyed(<memo>="<key_fn>")`` holds cache entries
    whose freshness is carried by the key, not by an invalidation hook.
    Any method that stores into the memo (``self.<memo>[...] = ...`` or
    an in-place write) must call ``<key_fn>(...)`` somewhere in its body
    — otherwise the entry is keyed without the revision and survives the
    invalidation it was supposed to observe.
    """

    rule_id = "CC005"
    title = "revision-keyed memo written without its revision function"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        decls = declarations()
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            decl = decls.classes.get(class_node.name)
            if decl is None or not decl.keyed_fields:
                continue
            for item in class_node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _CONSTRUCTORS:
                    continue
                written = {
                    name
                    for name, _ in _self_field_mutations(item)
                    if name in decl.keyed_fields
                }
                for field_name in sorted(written):
                    key_fn = decl.keyed_fields[field_name]
                    if not _is_provider_call(item, {key_fn}):
                        yield ctx.finding(
                            item,
                            self.rule_id,
                            f"{decl.name}.{item.name} writes revision-keyed "
                            f"memo {field_name!r} without deriving the key "
                            f"from {key_fn}(...)",
                        )
