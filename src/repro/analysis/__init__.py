"""AST-based static analysis for the ElasticFlow reproduction.

A purpose-built linter (no third-party lint engine) enforcing the
invariants the test suite cannot see: determinism of scheduling decisions,
coherence between mutations and the planning-table invalidation registry,
float/power-of-two numeric hygiene, simulation I/O discipline, and error
chaining.  Run it with ``python -m repro.analysis``; the rule catalog
lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.report import AnalysisReport
from repro.analysis.runner import run_analysis

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register",
    "run_analysis",
]
